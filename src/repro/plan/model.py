"""Analytic service-time model over calibrated cost vectors.

Prediction is a *decompose → re-compose* cycle. A calibration run
measured ``service_time_s`` under known bandwidths and fault costs; the
model subtracts the explainable terms (bytes over each tier at the
calibration bandwidths, faults at the calibration costs) to isolate a
residual ``t_base`` — compute, latency and everything the linear terms
do not capture. Predicting a new configuration re-prices the same byte
and fault counts against the *target* constants and adds the residual
back. At the calibration configuration the cycle is exact by
construction: prediction ≡ measurement.

Two roofline guards keep the linear model honest:

* the predicted time can never drop below the largest single tier term
  (one memory system must still move its bytes, whatever else overlaps);
* per-superchip throughput is capped by ``min_r bandwidth_r / bytes_r``
  across tiers — the sizing solver uses this to convert a request rate
  into a superchip count independent of replica count.

Oversubscription is modelled as a spill fraction: a working set ``R``
times GPU capacity keeps only ``1/R`` of its accesses on HBM, so
raising ``R`` beyond the calibrated ratio shifts the excess HBM bytes
onto the C2C path (the paper's Figures 11-13 collapse mechanism),
re-priced at C2C bandwidth.

Workload mixes compose linearly: a ``fig12:0.6,fig13:0.4`` mix is a
per-request service-time *mixture* (each request is one workload), so
the queueing layer receives the mixture's mean, second moment and SCV
rather than a single blended scalar.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.config import SystemConfig
from .calibrate import CostVector
from .queueing import mixture_moments, mixture_percentile


def parse_mix(spec: str) -> dict[str, float]:
    """Parse ``"fig12:0.6,fig13:0.4"`` into ``{exp_id: weight}``.

    A bare id (``"fig12"``) gets weight 1. Weights need not sum to 1 —
    they are normalised downstream — but must be positive.
    """
    mix: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            exp_id, _, raw = part.partition(":")
            try:
                weight = float(raw)
            except ValueError:
                raise ValueError(f"bad mix weight in {part!r}") from None
        else:
            exp_id, weight = part, 1.0
        if weight <= 0:
            raise ValueError(f"mix weight must be positive in {part!r}")
        mix[exp_id.strip()] = mix.get(exp_id.strip(), 0.0) + weight
    if not mix:
        raise ValueError(f"empty mix spec {spec!r}")
    return mix


@dataclass(frozen=True)
class ServiceTerms:
    """Per-tier decomposition of one request's service time (seconds)."""

    hbm_s: float
    ddr_s: float
    c2c_s: float
    fault_s: float
    base_s: float  # residual: compute + latency + unmodelled effects

    @property
    def total_s(self) -> float:
        linear = (
            self.base_s + self.hbm_s + self.ddr_s + self.c2c_s + self.fault_s
        )
        # Roofline floor: whatever overlaps, the busiest tier still has
        # to move its bytes.
        return max(linear, self.hbm_s, self.ddr_s, self.c2c_s)


def _spill_fraction(ratio: float) -> float:
    """Fraction of GPU-side accesses forced off HBM at oversubscription
    ``ratio`` (working set / GPU capacity): capacity holds ``1/R``."""
    if ratio <= 1.0:
        return 0.0
    return 1.0 - 1.0 / ratio


class WorkloadModel:
    """Service-time predictor for one calibrated workload."""

    def __init__(self, vector: CostVector):
        self.vector = vector

    def _terms(
        self,
        hbm_bw: float,
        ddr_bw: float,
        c2c_h2d_bw: float,
        c2c_d2h_bw: float,
        gpu_fault_cost: float,
        cpu_fault_cost: float,
        far_fault_cost: float,
        oversubscription: float | None,
    ) -> ServiceTerms:
        v = self.vector
        hbm_bytes = float(v.hbm_bytes)
        c2c_h2d = float(v.c2c_h2d_bytes)
        if oversubscription is not None:
            delta = _spill_fraction(oversubscription) - _spill_fraction(
                v.oversubscription
            )
            shifted = max(-c2c_h2d, min(hbm_bytes, delta * hbm_bytes))
            hbm_bytes -= shifted
            c2c_h2d += shifted
        return ServiceTerms(
            hbm_s=hbm_bytes / hbm_bw,
            ddr_s=v.ddr_bytes / ddr_bw,
            c2c_s=c2c_h2d / c2c_h2d_bw + v.c2c_d2h_bytes / c2c_d2h_bw,
            fault_s=(
                v.gpu_faults * gpu_fault_cost
                + v.cpu_faults * cpu_fault_cost
                + v.far_faults * far_fault_cost
            ),
            base_s=0.0,
        )

    def calibration_terms(self) -> ServiceTerms:
        """The decomposition at the calibration configuration; its
        residual makes the round trip exact."""
        v = self.vector
        t = self._terms(
            v.hbm_bw, v.ddr_bw, v.c2c_h2d_bw, v.c2c_d2h_bw,
            v.gpu_fault_cost, v.cpu_fault_cost, v.far_fault_cost,
            oversubscription=None,
        )
        base = v.service_time_s - (t.hbm_s + t.ddr_s + t.c2c_s + t.fault_s)
        return ServiceTerms(t.hbm_s, t.ddr_s, t.c2c_s, t.fault_s, base)

    def predict_terms(
        self,
        config: SystemConfig | None = None,
        *,
        oversubscription: float | None = None,
    ) -> ServiceTerms:
        """Re-price the calibrated counts against ``config`` (defaults
        to the paper testbed) at an optional new oversubscription."""
        cfg = config or SystemConfig.paper_gh200()
        base = self.calibration_terms().base_s
        t = self._terms(
            cfg.hbm_bandwidth, cfg.cpu_memory_bandwidth,
            cfg.c2c_h2d_bandwidth, cfg.c2c_d2h_bandwidth,
            cfg.gpu_replayable_fault_cost, cfg.cpu_fault_cost,
            cfg.managed_farfault_cost,
            oversubscription=oversubscription,
        )
        return ServiceTerms(t.hbm_s, t.ddr_s, t.c2c_s, t.fault_s, base)

    def predict_service_time(
        self,
        config: SystemConfig | None = None,
        *,
        oversubscription: float | None = None,
        checkpoint: bool = False,
    ) -> float:
        """Seconds per request. ``checkpoint=True`` models requests
        replayed off an epoch checkpoint: only the calibrated suffix
        fraction of the run executes."""
        total = self.predict_terms(
            config, oversubscription=oversubscription
        ).total_s
        if checkpoint:
            total *= self.vector.checkpoint_suffix_fraction
        return max(0.0, total)

    def bytes_by_tier(self) -> dict[str, float]:
        v = self.vector
        return {
            "hbm": float(v.hbm_bytes),
            "ddr": float(v.ddr_bytes),
            "c2c_h2d": float(v.c2c_h2d_bytes),
            "c2c_d2h": float(v.c2c_d2h_bytes),
        }


class MixModel:
    """A traffic mix over calibrated workloads, ready for queueing."""

    def __init__(self, vectors: dict[str, CostVector], mix: dict[str, float]):
        missing = [e for e in mix if e not in vectors]
        if missing:
            raise KeyError(f"no cost vector for mix component(s) {missing}")
        self.mix = dict(mix)
        self.models = {e: WorkloadModel(vectors[e]) for e in mix}

    def _times(
        self,
        config: SystemConfig | None,
        oversubscription: float | None,
        checkpoint: bool,
    ) -> tuple[list[float], list[float]]:
        times, weights = [], []
        for exp_id, weight in self.mix.items():
            times.append(
                self.models[exp_id].predict_service_time(
                    config,
                    oversubscription=oversubscription,
                    checkpoint=checkpoint,
                )
            )
            weights.append(weight)
        return times, weights

    def service_moments(
        self,
        config: SystemConfig | None = None,
        *,
        oversubscription: float | None = None,
        checkpoint: bool = False,
    ) -> tuple[float, float, float]:
        """``(mean_s, second_moment_s2, scv)`` of the mixture."""
        return mixture_moments(
            *self._times(config, oversubscription, checkpoint)
        )

    def service_percentile(
        self,
        p: float,
        config: SystemConfig | None = None,
        *,
        oversubscription: float | None = None,
        checkpoint: bool = False,
    ) -> float:
        return mixture_percentile(
            *self._times(config, oversubscription, checkpoint), p
        )

    def superchip_rate(
        self, config: SystemConfig | None = None
    ) -> tuple[float, str]:
        """Requests/s one superchip's memory system sustains for this
        mix, and the limiting tier — the bandwidth roofline
        ``min_r bw_r / bytes_r`` over mix-averaged per-request bytes."""
        cfg = config or SystemConfig.paper_gh200()
        total_w = sum(self.mix.values())
        per_request: dict[str, float] = {}
        for exp_id, weight in self.mix.items():
            for tier, b in self.models[exp_id].bytes_by_tier().items():
                per_request[tier] = per_request.get(tier, 0.0) + (
                    weight / total_w
                ) * b
        bw = {
            "hbm": cfg.hbm_bandwidth,
            "ddr": cfg.cpu_memory_bandwidth,
            "c2c_h2d": cfg.c2c_h2d_bandwidth,
            "c2c_d2h": cfg.c2c_d2h_bandwidth,
        }
        best_rate = float("inf")
        limiting = "none"
        for tier, nbytes in per_request.items():
            if nbytes <= 0:
                continue
            rate = bw[tier] / nbytes
            if rate < best_rate:
                best_rate, limiting = rate, tier
        return best_rate, limiting
