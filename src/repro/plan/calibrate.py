"""Per-workload cost vectors, extracted from single calibration runs.

The planner never simulates in its query path. Instead, each figure
experiment gets **one representative simulator run** whose hardware
counters are distilled into a :class:`CostVector`: how many bytes moved
over each memory tier (HBM, LPDDR, NVLink-C2C by direction), how many
GPU replayable / CPU / managed far faults fired, how much was migrated
and evicted, how the run splits between CPU-side epochs and GPU compute,
and what fraction of the run a what-if checkpoint could skip. The MI300A
and SVM design-space studies (PAPERS.md) observe that exactly these
per-workload vectors compose predictably across configurations — the
structural bet this module encodes.

Vectors are persisted through the existing :class:`ResultCache` via
:func:`repro.bench.runner.run_payload_cached` under ids like
``plan_cal_fig12``, so they inherit the goldens' content-addressed
hygiene: any change to :class:`SystemConfig`, experiment kwargs or the
package version invalidates them automatically, and ``repro-bench cache
invalidate plan_cal_fig12`` drops them by hand.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

from ..bench.harness import run_app, scaled_qubits
from ..bench.runner import ResultCache, run_payload_cached
from ..core.porting import MemoryMode
from ..sim.config import SystemConfig

#: Cache-entry id prefix for calibration vectors (kept distinct from
#: registry experiment ids; enforced by ``run_payload_cached``).
CAL_PREFIX = "plan_cal_"

#: Bump to invalidate persisted vectors after a schema change.
#: 2: cost vectors are per-(experiment, memory-architecture backend).
COST_VECTOR_SCHEMA = 2


@dataclass(frozen=True)
class CalibrationSpec:
    """The one representative ``run_app`` invocation for an experiment.

    Each figure sweeps several variants; calibration picks the variant
    the figure is *about* (e.g. fig12 = managed 64 KB + prefetch at 34
    qubits) so the vector captures the configuration a capacity plan
    would actually deploy.
    """

    app: str
    mode: MemoryMode
    page_size: int = 64 * 1024
    migration: bool = True
    oversubscription: float | None = None
    #: Unscaled qubit count (qiskit only); scaled via ``scaled_qubits``.
    qubits: int | None = None
    prefetch: bool = False

    def app_kwargs(self, scale: float) -> dict:
        kwargs: dict = {}
        if self.qubits is not None:
            kwargs["qubits"] = scaled_qubits(self.qubits, scale)
        if self.prefetch:
            kwargs["prefetch"] = True
        return kwargs


#: One calibration run per figure experiment. Table/section experiments
#: that aggregate many heterogeneous runs (table1/table2/sec21,
#: topo_scaling) have no single representative configuration and are
#: deliberately absent — ``calibrate`` raises a KeyError listing these.
CALIBRATION_RUNS: dict[str, CalibrationSpec] = {
    "fig3": CalibrationSpec("hotspot", MemoryMode.SYSTEM, migration=False),
    "fig4": CalibrationSpec("hotspot", MemoryMode.MANAGED, migration=False),
    "fig5": CalibrationSpec(
        "qiskit", MemoryMode.MANAGED, migration=False, qubits=33
    ),
    "fig6": CalibrationSpec("srad", MemoryMode.SYSTEM, page_size=4096),
    "fig7": CalibrationSpec("srad", MemoryMode.SYSTEM, migration=True),
    "fig8": CalibrationSpec(
        "qiskit", MemoryMode.SYSTEM, migration=False, qubits=28
    ),
    "fig9": CalibrationSpec(
        "qiskit", MemoryMode.SYSTEM, migration=False, qubits=33
    ),
    "fig10": CalibrationSpec("srad", MemoryMode.MANAGED, migration=True),
    "fig11": CalibrationSpec(
        "hotspot", MemoryMode.SYSTEM, page_size=4096, migration=False,
        oversubscription=1.5,
    ),
    "fig12": CalibrationSpec(
        "qiskit", MemoryMode.MANAGED, migration=False, qubits=34,
        prefetch=True,
    ),
    "fig13": CalibrationSpec(
        "qiskit", MemoryMode.MANAGED, page_size=4096, migration=False,
        qubits=34,
    ),
    "sec512": CalibrationSpec(
        "srad", MemoryMode.SYSTEM, page_size=4096, migration=False
    ),
}


def calibratable_ids() -> list[str]:
    return list(CALIBRATION_RUNS)


@dataclass(frozen=True)
class CostVector:
    """Everything the analytic model needs about one workload.

    Byte counts are aggregated by *physical path*: ``c2c_h2d_bytes`` is
    every byte that crossed NVLink-C2C toward the GPU (remote reads,
    H2D migrations, CPU writes into HBM) and ``c2c_d2h_bytes`` the
    reverse (remote writes, D2H migrations, evictions, CPU reads of
    HBM). The calibration-time bandwidth/cost constants are embedded so
    a persisted vector stays self-contained — predictions decompose the
    measured service time against the *same* constants it was measured
    under, then re-compose against the target configuration.
    """

    schema: int
    exp_id: str
    app: str
    mode: str
    #: Memory-architecture backend the vector was measured under —
    #: vectors are per-(experiment, backend), never interchangeable.
    mem_arch: str
    scale: float
    page_size: int
    migration: bool
    oversubscription: float
    #: Simulated end-to-end run time — the per-request service time.
    service_time_s: float
    #: Host wall-clock of the calibration run (cost of re-calibrating).
    wall_s: float
    #: Kernel epochs and total CPU-side (non-kernel) simulated time.
    epochs: int
    cpu_s: float
    epoch_cpu_s: float
    #: Fraction of the run after the first epoch boundary — what a
    #: what-if checkpoint restore could skip (PR6 suffix replay).
    checkpoint_suffix_fraction: float
    # Traffic by physical path (bytes).
    hbm_bytes: int
    ddr_bytes: int
    c2c_h2d_bytes: int
    c2c_d2h_bytes: int
    fabric_bytes: int
    migrated_bytes: int
    eviction_bytes: int
    # Event counts.
    gpu_faults: int
    far_faults: int
    cpu_faults: int
    pages_migrated: int
    pages_evicted: int
    # Footprint.
    working_set_bytes: int
    gpu_capacity_bytes: int
    # Calibration-time model constants (self-containment).
    hbm_bw: float
    ddr_bw: float
    c2c_h2d_bw: float
    c2c_d2h_bw: float
    gpu_fault_cost: float
    cpu_fault_cost: float
    far_fault_cost: float

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "CostVector":
        if payload.get("schema") != COST_VECTOR_SCHEMA:
            raise ValueError(
                f"cost vector schema {payload.get('schema')!r} != "
                f"{COST_VECTOR_SCHEMA}; re-run 'repro-bench plan calibrate'"
            )
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})

    @property
    def oversubscribed(self) -> bool:
        return self.working_set_bytes > self.gpu_capacity_bytes


def _suffix_fraction(kernel_records, total_s: float) -> float:
    """Fraction of the run after the first kernel-epoch boundary.

    A what-if checkpoint captured at the first epoch boundary lets a
    replay skip everything up to and including the first kernel;
    requests served off such a checkpoint only pay the suffix. Kernel
    timestamps share one absolute simulation clock (which does not
    start at zero for the app window), so the suffix is measured as
    the span between the first and last epoch boundaries. No kernels →
    nothing skippable, the suffix is the entire run (1.0).
    """
    if not kernel_records or total_s <= 0:
        return 1.0
    first_end = min(r.start + r.duration for r in kernel_records)
    last_end = max(r.start + r.duration for r in kernel_records)
    return min(1.0, max(0.0, (last_end - first_end) / total_s))


def measure_cost_vector(
    exp_id: str, scale: float = 1.0, mem_arch: str = "gh200"
) -> dict:
    """Run the calibration simulation for ``exp_id`` and distil the
    counters into a cost-vector payload (JSON-serialisable dict)."""
    try:
        spec = CALIBRATION_RUNS[exp_id]
    except KeyError:
        raise KeyError(
            f"no calibration run for {exp_id!r}; calibratable experiments: "
            f"{', '.join(calibratable_ids())}"
        ) from None
    import time

    t0 = time.perf_counter()
    result, gh = run_app(
        spec.app,
        spec.mode,
        scale=scale,
        page_size=spec.page_size,
        migration=spec.migration,
        oversubscription=spec.oversubscription,
        config_overrides={"mem_arch": mem_arch},
        app_kwargs=spec.app_kwargs(scale),
    )
    wall = time.perf_counter() - t0

    c = result.counters
    cfg = gh.config
    records = gh.counters.kernel_records
    total = result.reported_total
    kernel_s = sum(r.duration for r in records)
    cpu_s = max(0.0, total - kernel_s)
    epochs = len(records)

    from ..apps import get_application

    app = get_application(spec.app, scale=scale, **spec.app_kwargs(scale))
    capacity = max(
        1, cfg.gpu_memory_bytes - cfg.gpu_driver_baseline_bytes
    )
    working_set = app.working_set_bytes()
    oversub = spec.oversubscription or working_set / capacity

    return CostVector(
        schema=COST_VECTOR_SCHEMA,
        exp_id=exp_id,
        app=spec.app,
        mode=spec.mode.value,
        mem_arch=mem_arch,
        scale=scale,
        page_size=spec.page_size,
        migration=spec.migration,
        oversubscription=round(oversub, 4),
        service_time_s=total,
        wall_s=wall,
        epochs=epochs,
        cpu_s=cpu_s,
        epoch_cpu_s=cpu_s / epochs if epochs else cpu_s,
        checkpoint_suffix_fraction=_suffix_fraction(records, total),
        hbm_bytes=c.hbm_read_bytes + c.hbm_write_bytes,
        ddr_bytes=c.lpddr_read_bytes + c.lpddr_write_bytes,
        c2c_h2d_bytes=(
            c.c2c_read_bytes + c.migration_h2d_bytes + c.cpu_remote_write_bytes
        ),
        c2c_d2h_bytes=(
            c.c2c_write_bytes + c.migration_d2h_bytes
            + c.eviction_bytes + c.cpu_remote_read_bytes
        ),
        fabric_bytes=c.fabric_bytes,
        migrated_bytes=c.migration_h2d_bytes + c.migration_d2h_bytes,
        eviction_bytes=c.eviction_bytes,
        gpu_faults=c.gpu_replayable_faults,
        far_faults=c.managed_far_faults,
        cpu_faults=c.cpu_page_faults,
        pages_migrated=c.pages_migrated_h2d + c.pages_migrated_d2h,
        pages_evicted=c.pages_evicted,
        working_set_bytes=working_set,
        gpu_capacity_bytes=capacity,
        hbm_bw=cfg.hbm_bandwidth,
        ddr_bw=cfg.cpu_memory_bandwidth,
        c2c_h2d_bw=cfg.c2c_h2d_bandwidth,
        c2c_d2h_bw=cfg.c2c_d2h_bandwidth,
        gpu_fault_cost=cfg.gpu_replayable_fault_cost,
        cpu_fault_cost=cfg.cpu_fault_cost,
        far_fault_cost=cfg.managed_farfault_cost,
    ).to_dict()


def _cache_kwargs(scale: float, mem_arch: str) -> dict:
    """Cache-entry kwargs: the default backend is omitted so vectors
    calibrated before backends existed keep their keys; every other
    backend gets distinct per-(experiment, backend) entries."""
    kwargs: dict = {"scale": scale}
    if mem_arch != "gh200":
        kwargs["mem_arch"] = mem_arch
    return kwargs


def calibrate(
    exp_id: str,
    *,
    scale: float = 1.0,
    cache: ResultCache | None = None,
    force: bool = False,
    mem_arch: str = "gh200",
) -> CostVector:
    """One cost vector, cached. The simulation only runs on a miss."""
    payload = run_payload_cached(
        CAL_PREFIX + exp_id,
        lambda: measure_cost_vector(exp_id, scale, mem_arch),
        cache=cache,
        force=force,
        title=f"capacity-planner cost vector for {exp_id} ({mem_arch})",
        **_cache_kwargs(scale, mem_arch),
    )
    return CostVector.from_dict(payload)


def load_calibrated(
    exp_id: str, *, scale: float = 1.0, cache: ResultCache,
    mem_arch: str = "gh200",
) -> CostVector | None:
    """Fetch a persisted vector without ever simulating (query path)."""
    hit = cache.get(CAL_PREFIX + exp_id, **_cache_kwargs(scale, mem_arch))
    if hit is None or not hit.rows:
        return None
    return CostVector.from_dict(hit.rows[0])


def calibrate_many(
    exp_ids: list[str],
    *,
    scale: float = 1.0,
    cache: ResultCache | None = None,
    force: bool = False,
    mem_arch: str = "gh200",
) -> dict[str, CostVector]:
    unknown = [e for e in exp_ids if e not in CALIBRATION_RUNS]
    if unknown:
        raise KeyError(
            f"no calibration run for {unknown}; calibratable experiments: "
            f"{', '.join(calibratable_ids())}"
        )
    return {
        exp_id: calibrate(
            exp_id, scale=scale, cache=cache, force=force, mem_arch=mem_arch
        )
        for exp_id in exp_ids
    }


def default_config() -> SystemConfig:
    return SystemConfig.paper_gh200()
