"""Steady-state queueing approximations for the serve + cluster tier.

The planner treats the serving fleet as a ``G/G/c`` station: ``c``
servers (replicas × workers per replica), a request mix whose service
time is a *mixture of deterministic costs* (one per calibrated
workload), and an arrival process whose burstiness is summarised by a
squared coefficient of variation. Three classic results are layered:

* **Erlang C** (M/M/c) gives the probability an arrival waits and the
  mean wait; computed with the numerically stable recurrence, never a
  naive factorial.
* **Allen–Cunneen** corrects the M/M/c wait for general service and
  arrival variability: ``Wq ≈ Wq(M/M/c) · (ca² + cs²) / 2``. Its known
  error is small (<10%) for moderate utilisation and variability, and
  degrades near ``ρ → 1`` or for extreme SCVs — which is exactly where
  the planner reports ``stable=False`` or saturation anyway.
* The **exponential-tail** wait distribution of M/M/c,
  ``P(W > t | wait) = exp(-(cμ - λ)t)``, stretched by the same
  Allen–Cunneen factor so the tail's mean matches the corrected mean;
  wait percentiles come from inverting it in closed form.

Cache hits and cross-replica coalescing *thin* the arrival stream: a
request answered by the shared cache or attached to an identical
in-flight job never occupies a server, so the effective arrival rate at
the queueing station is ``λ · (1 - hit - coalesce)`` while the goodput
still counts every completed request.

Every function guards its edges explicitly: ``c = 1`` reduces Erlang C
to ``ρ``, zero service time short-circuits to zero latency, and
``ρ ≥ 1`` reports saturation (infinite steady-state waits, goodput
pinned at capacity) instead of dividing by zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def erlang_c(servers: int, offered_load: float) -> float:
    """Probability an arrival has to wait (M/M/c).

    ``offered_load`` is ``a = λ/μ = λ · E[S]`` in Erlangs. Computed via
    the Erlang-B recurrence ``B(k) = a·B(k-1) / (k + a·B(k-1))`` and
    ``C = B / (1 - ρ(1-B))`` — every intermediate stays in [0, 1], so
    this never overflows even for thousands of servers (the naive
    ``a^k/k!`` sum blows up past a ≈ 700). With ``servers = 1`` this
    reduces to ``ρ`` exactly; saturated systems (``a ≥ c``) wait with
    probability 1.
    """
    if servers < 1:
        raise ValueError("servers must be >= 1")
    if offered_load <= 0.0:
        return 0.0
    rho = offered_load / servers
    if rho >= 1.0:
        return 1.0
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    return blocking / (1.0 - rho * (1.0 - blocking))


@dataclass(frozen=True)
class QueueEstimate:
    """One fleet-size operating point predicted by the model."""

    servers: int
    #: Offered request rate (before thinning), req/s.
    arrival_rps: float
    #: Rate actually hitting the servers after cache/coalesce thinning.
    effective_rps: float
    #: Mean service time of a *served* (miss) request, seconds.
    service_mean_s: float
    #: Squared coefficient of variation of the service time.
    service_scv: float
    utilization: float
    stable: bool
    #: Probability an effective arrival waits (Erlang C).
    p_wait: float
    wait_mean_s: float
    wait_p50_s: float
    wait_p99_s: float
    #: Mean/percentile end-to-end latency of a served request
    #: (wait + service); cache hits see ~0 and are excluded.
    sojourn_mean_s: float
    p50_s: float
    p99_s: float
    #: Sustainable completion rate: every offered request when stable,
    #: hits + server capacity when saturated.
    goodput_rps: float
    notes: tuple[str, ...] = field(default=())


def estimate(
    arrival_rps: float,
    service_mean_s: float,
    servers: int,
    *,
    service_scv: float = 0.0,
    arrival_scv: float = 1.0,
    thinning: float = 0.0,
    service_p50_s: float | None = None,
    service_p99_s: float | None = None,
) -> QueueEstimate:
    """Predict one ``G/G/c`` operating point.

    ``thinning`` is the fraction of arrivals absorbed upstream of the
    servers (shared-cache hits + coalesced joins); ``service_*`` moments
    describe the *miss* traffic that actually executes. ``arrival_scv``
    is the SCV of the arrival process (1 = Poisson; bursty replay with
    geometric bursts of mean ``B`` is ≈ ``2B - 1``).
    """
    if servers < 1:
        raise ValueError("servers must be >= 1")
    if not 0.0 <= thinning <= 1.0:
        raise ValueError("thinning must be within [0, 1]")
    if service_mean_s < 0 or arrival_rps < 0:
        raise ValueError("rates and service times must be non-negative")
    s50 = service_mean_s if service_p50_s is None else service_p50_s
    s99 = service_mean_s if service_p99_s is None else service_p99_s

    lam = arrival_rps * (1.0 - thinning)
    notes: list[str] = []
    # Zero-service-time guard: an infinitely fast server never queues.
    if service_mean_s == 0.0 or lam == 0.0:
        return QueueEstimate(
            servers=servers, arrival_rps=arrival_rps, effective_rps=lam,
            service_mean_s=service_mean_s, service_scv=service_scv,
            utilization=0.0, stable=True, p_wait=0.0,
            wait_mean_s=0.0, wait_p50_s=0.0, wait_p99_s=0.0,
            sojourn_mean_s=service_mean_s, p50_s=s50, p99_s=s99,
            goodput_rps=arrival_rps,
            notes=("zero-load short-circuit",),
        )

    offered = lam * service_mean_s  # Erlangs
    capacity = servers / service_mean_s  # misses/s the fleet can retire
    rho = offered / servers
    correction = max(0.0, (arrival_scv + service_scv) / 2.0)

    if rho >= 1.0:
        # Saturation: steady-state waits diverge; goodput pins at
        # capacity plus whatever the cache tier absorbs.
        goodput = capacity + arrival_rps * thinning
        return QueueEstimate(
            servers=servers, arrival_rps=arrival_rps, effective_rps=lam,
            service_mean_s=service_mean_s, service_scv=service_scv,
            utilization=min(rho, 1.0), stable=False, p_wait=1.0,
            wait_mean_s=math.inf, wait_p50_s=math.inf, wait_p99_s=math.inf,
            sojourn_mean_s=math.inf, p50_s=math.inf, p99_s=math.inf,
            goodput_rps=min(goodput, arrival_rps),
            notes=(f"saturated: rho={rho:.3f} >= 1",),
        )

    p_wait = erlang_c(servers, offered)
    drain = capacity - lam  # (cμ - λ), the M/M/c tail decay rate
    wait_mean = p_wait / drain * correction
    # Stretch the exponential tail so its mean matches Allen-Cunneen.
    decay = drain / correction if correction > 0 else math.inf

    def wait_percentile(p: float) -> float:
        tail = 1.0 - p
        if p_wait <= tail or decay == math.inf:
            return 0.0
        return math.log(p_wait / tail) / decay

    if rho > 0.9:
        notes.append(
            f"rho={rho:.3f} > 0.9: Allen-Cunneen error grows near "
            "saturation; treat percentiles as indicative"
        )
    return QueueEstimate(
        servers=servers, arrival_rps=arrival_rps, effective_rps=lam,
        service_mean_s=service_mean_s, service_scv=service_scv,
        utilization=rho, stable=True, p_wait=p_wait,
        wait_mean_s=wait_mean,
        wait_p50_s=wait_percentile(0.50),
        wait_p99_s=wait_percentile(0.99),
        sojourn_mean_s=wait_mean + service_mean_s,
        p50_s=wait_percentile(0.50) + s50,
        p99_s=wait_percentile(0.99) + s99,
        goodput_rps=arrival_rps,
        notes=tuple(notes),
    )


def mixture_moments(
    times_s: list[float], weights: list[float]
) -> tuple[float, float, float]:
    """Mean, second moment and SCV of a deterministic-per-class mixture.

    Each workload class contributes its (deterministic) service time
    with its traffic share; the mixture's variability is what M/G/c
    sees. Weights are normalised; all-zero weights are rejected.
    """
    if len(times_s) != len(weights) or not times_s:
        raise ValueError("times and weights must be equal-length, non-empty")
    if any(w < 0 for w in weights) or any(t < 0 for t in times_s):
        raise ValueError("times and weights must be non-negative")
    total = sum(weights)
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    shares = [w / total for w in weights]
    mean = sum(s * t for s, t in zip(shares, times_s))
    m2 = sum(s * t * t for s, t in zip(shares, times_s))
    var = max(0.0, m2 - mean * mean)
    scv = var / (mean * mean) if mean > 0 else 0.0
    return mean, m2, scv


def mixture_percentile(
    times_s: list[float], weights: list[float], p: float
) -> float:
    """p-quantile of the deterministic mixture (exact, by sorting)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be within [0, 1]")
    pairs = sorted(zip(times_s, weights))
    total = sum(w for _, w in pairs)
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    acc = 0.0
    for t, w in pairs:
        acc += w / total
        if acc >= p - 1e-12:
            return t
    return pairs[-1][0]


def geometric_burst_arrival_scv(burst_mean: float) -> float:
    """Arrival-process SCV of back-to-back geometric bursts.

    A batch-Poisson process with geometric batch sizes of mean ``B``
    has an index of dispersion ≈ ``2B - 1`` (each burst arrives as one
    near-instant clump); this is the ``ca²`` the traffic generator's
    replay presents to the fleet.
    """
    if burst_mean < 1:
        raise ValueError("burst_mean must be >= 1")
    return 2.0 * burst_mean - 1.0


def finite_run_wall_s(
    arrival_span_s: float,
    total_work_s: float,
    servers: int,
    *,
    tail_service_s: float = 0.0,
) -> float:
    """Wall time to complete a finite replay.

    An open-loop replay offers work over ``arrival_span_s``; the fleet
    retires ``servers`` seconds of work per second. The run ends at the
    later of the two, plus the tail of the last request still in
    service. This is the deterministic bound the throughput gate uses —
    robust where steady-state formulas are not (finite N, warmup).
    """
    if servers < 1:
        raise ValueError("servers must be >= 1")
    if arrival_span_s < 0 or total_work_s < 0:
        raise ValueError("spans must be non-negative")
    return max(arrival_span_s, total_work_s / servers) + tail_service_s
