"""Analytic capacity planner calibrated by the simulator.

Answers "how many replicas / superchips for X req/s at p99 < Z?" in
microseconds: per-workload cost vectors are extracted from single
cached calibration runs (:mod:`.calibrate`), composed and re-priced
against target configurations (:mod:`.model`), pushed through M/G/c
queueing approximations (:mod:`.queueing`), inverted for SLOs
(:mod:`.solver`) and cross-validated against measured cluster runs
(:mod:`.validate`). Surfaced as ``repro-bench plan``.
"""

from .calibrate import (
    CALIBRATION_RUNS,
    CostVector,
    calibratable_ids,
    calibrate,
    calibrate_many,
    load_calibrated,
    measure_cost_vector,
)
from .model import MixModel, ServiceTerms, WorkloadModel, parse_mix
from .queueing import (
    QueueEstimate,
    erlang_c,
    estimate,
    finite_run_wall_s,
    geometric_burst_arrival_scv,
    mixture_moments,
    mixture_percentile,
)
from .solver import SizingResult, solve_min_replicas
from .validate import (
    StreamStats,
    measured_min_replicas,
    predict_goodput_rps,
    predicted_min_replicas,
    stream_stats,
    validate_scaling,
)

__all__ = [
    "CALIBRATION_RUNS",
    "CostVector",
    "MixModel",
    "QueueEstimate",
    "ServiceTerms",
    "SizingResult",
    "StreamStats",
    "WorkloadModel",
    "calibratable_ids",
    "calibrate",
    "calibrate_many",
    "erlang_c",
    "estimate",
    "finite_run_wall_s",
    "geometric_burst_arrival_scv",
    "load_calibrated",
    "measure_cost_vector",
    "measured_min_replicas",
    "mixture_moments",
    "mixture_percentile",
    "parse_mix",
    "predict_goodput_rps",
    "predicted_min_replicas",
    "solve_min_replicas",
    "stream_stats",
    "validate_scaling",
]
