"""Explicit-copy DMA engine (``cudaMemcpy`` and friends).

Models the traditional explicit data-movement path the paper's
*explicit* application versions use: ``cudaMalloc`` + ``cudaMemcpy``
between host and device. Copies from pageable host memory bounce through
a pinned staging buffer and run below the streaming C2C rate; pinned
(``cudaMallocHost``) sources reach it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.config import Processor, SystemConfig
from .nvlink import NvlinkC2C


@dataclass
class CopyStats:
    h2d_copies: int = 0
    d2h_copies: int = 0
    d2d_copies: int = 0
    bytes_copied: int = 0


class CopyEngine:
    """cudaMemcpy cost model: call overhead, staging, directional DMA."""
    def __init__(self, config: SystemConfig, link: NvlinkC2C):
        self.config = config
        self.link = link
        self.stats = CopyStats()

    def memcpy(
        self,
        nbytes: int,
        src: Processor,
        dst: Processor,
        *,
        pinned: bool = False,
    ) -> float:
        """Time for one ``cudaMemcpy`` of ``nbytes`` from ``src`` to ``dst``."""
        if nbytes < 0:
            raise ValueError("copy size must be non-negative")
        cost = self.config.cuda_memcpy_call_cost
        if nbytes == 0:
            return cost
        self.stats.bytes_copied += nbytes
        if src is dst:
            self.stats.d2d_copies += 1
            return cost + nbytes / self.config.local_bandwidth(src)
        if src is Processor.CPU:
            self.stats.h2d_copies += 1
        else:
            self.stats.d2h_copies += 1
        t = self.link.streaming_time(nbytes, src, dst)
        if not pinned and Processor.CPU in (src, dst):
            # Pageable copies stage through a pinned bounce buffer.
            t /= self.config.pageable_copy_efficiency
        return cost + t

    def prefetch(self, nbytes: int, src: Processor, dst: Processor) -> float:
        """``cudaMemPrefetchAsync``-style bulk migration of managed pages.

        Runs at streaming rate (the driver moves whole 2 MB blocks)."""
        if nbytes <= 0:
            return 0.0
        return self.link.streaming_time(nbytes, src, dst)
