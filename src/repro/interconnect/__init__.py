"""NVLink-C2C interconnect, explicit-copy DMA engine, and the
inter-superchip fabric link primitives."""

from .copyengine import CopyEngine
from .fabric import TRAFFIC_CLASSES, FabricLink, FabricLinkStats, LinkKind
from .nvlink import NvlinkC2C

__all__ = [
    "NvlinkC2C",
    "CopyEngine",
    "FabricLink",
    "FabricLinkStats",
    "LinkKind",
    "TRAFFIC_CLASSES",
]
