"""NVLink-C2C interconnect and explicit-copy DMA engine."""

from .copyengine import CopyEngine
from .nvlink import NvlinkC2C

__all__ = ["NvlinkC2C", "CopyEngine"]
