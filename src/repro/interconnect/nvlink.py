"""The NVLink-C2C chip-to-chip interconnect.

Carries three traffic classes the paper distinguishes:

* **direct remote accesses** at cacheline granularity (system memory's
  ATS path, and managed memory's remote mapping under oversubscription);
* **page migrations** (driver-initiated, both directions);
* **explicit DMA copies** (``cudaMemcpy`` and the copy engines).

Bandwidth is asymmetric — the paper measures 375 GB/s host-to-device and
297 GB/s device-to-host against a 450 GB/s theoretical figure — and
fine-grained traffic runs below the streaming rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.config import Processor, SystemConfig


@dataclass
class LinkStats:
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    h2d_seconds: float = 0.0
    d2h_seconds: float = 0.0
    #: Byte tallies split by traffic class ("dma" / "remote" /
    #: "migration"), updated together with the direction totals so the
    #: class sums always equal the bytes charged per direction.
    h2d_by_class: dict[str, int] = field(default_factory=dict)
    d2h_by_class: dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return self.h2d_bytes + self.d2h_bytes

    def class_bytes(self, cls: str) -> int:
        return self.h2d_by_class.get(cls, 0) + self.d2h_by_class.get(cls, 0)

    def conserved(self) -> bool:
        """Do the per-class tallies sum to the direction totals?"""
        return (
            sum(self.h2d_by_class.values()) == self.h2d_bytes
            and sum(self.d2h_by_class.values()) == self.d2h_bytes
        )


class NvlinkC2C:
    """Directional bandwidth/latency model of NVLink-C2C."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.stats = LinkStats()
        #: Optional structured event timeline (wired by the runtime);
        #: every charged transfer then emits a ``c2c:<class>`` span.
        self.timeline = None

    def _account(
        self, nbytes: int, src: Processor, seconds: float, cls: str
    ) -> None:
        if src is Processor.CPU:
            self.stats.h2d_bytes += nbytes
            self.stats.h2d_seconds += seconds
            by = self.stats.h2d_by_class
        else:
            self.stats.d2h_bytes += nbytes
            self.stats.d2h_seconds += seconds
            by = self.stats.d2h_by_class
        by[cls] = by.get(cls, 0) + nbytes
        if self.timeline is not None:
            self.timeline.complete(
                f"c2c:{cls}", self.timeline.now(), seconds,
                cat="fabric", track="fabric/c2c",
                bytes=nbytes,
                direction="h2d" if src is Processor.CPU else "d2h",
            )

    def account_external(
        self, nbytes: int, src: Processor, seconds: float, cls: str = "dma"
    ) -> None:
        """Account traffic whose timing was computed elsewhere (e.g. the
        explicit out-of-core pipeline overlapping DMA with compute)."""
        self._account(nbytes, src, seconds, cls)

    def streaming_time(self, nbytes: int, src: Processor, dst: Processor) -> float:
        """Time for a streaming (DMA/migration) transfer of ``nbytes``."""
        if nbytes <= 0:
            return 0.0
        bw = self.config.c2c_bandwidth(src, dst)
        t = nbytes / bw + self.config.c2c_latency
        self._account(nbytes, src, t, "dma")
        return t

    def remote_access_time(
        self,
        nbytes: int,
        accessor: Processor,
        *,
        efficiency: float | None = None,
    ) -> float:
        """Time for cacheline-granularity remote access of ``nbytes``.

        The *accessor* pulls (reads) or pushes (writes) across the link;
        direction for bandwidth purposes is data movement toward the
        accessor for reads. We charge the link in the direction data
        flows to the accessor, which for a GPU reading CPU memory is H2D.
        """
        if nbytes <= 0:
            return 0.0
        eff = self.config.remote_access_efficiency if efficiency is None else efficiency
        src = accessor.other
        bw = self.config.c2c_bandwidth(src, accessor) * eff
        t = nbytes / bw + self.config.c2c_latency
        self._account(nbytes, src, t, "remote")
        return t

    def migration_time(self, nbytes: int, src: Processor, dst: Processor) -> float:
        """Background-migration transfer time (driver rate-limited)."""
        if nbytes <= 0:
            return 0.0
        bw = (
            self.config.c2c_bandwidth(src, dst)
            * self.config.migration_bandwidth_fraction
        )
        t = nbytes / bw + self.config.c2c_latency
        self._account(nbytes, src, t, "migration")
        return t

    def achieved_bandwidth(self, direction: str) -> float:
        """Observed bandwidth so far for ``"h2d"`` or ``"d2h"`` traffic."""
        if direction == "h2d":
            return (
                self.stats.h2d_bytes / self.stats.h2d_seconds
                if self.stats.h2d_seconds
                else 0.0
            )
        if direction == "d2h":
            return (
                self.stats.d2h_bytes / self.stats.d2h_seconds
                if self.stats.d2h_seconds
                else 0.0
            )
        raise ValueError("direction must be 'h2d' or 'd2h'")
