"""Inter-superchip fabric links (beyond the paper's single GH200).

Quad-GH200 nodes expose a NUMA/NVLink fabric whose cross-superchip paths
behave very differently from the local NVLink-C2C link (Khalilov et al.,
"Understanding Data Movement in Tightly Coupled Heterogeneous Systems"):
GPU pairs are connected by NVLink fabric links, Grace CPUs by coherent
socket links, and every path has its own bandwidth, latency, and
direction asymmetry.

This module is the *link-level* model beside :mod:`repro.interconnect.nvlink`:
one :class:`FabricLink` per physical link, with per-direction and
per-traffic-class byte accounting so multi-hop routing (in
:mod:`repro.topology.routing`) can charge every traversed link and tests
can assert traffic conservation. The graph layer — which links exist and
how transfers route across them — lives in :mod:`repro.topology`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..sim.config import NodeId


class LinkKind(Enum):
    """The three physical link types of a multi-superchip node."""

    #: Intra-superchip NVLink-C2C (the paper's CPU<->GPU link).
    C2C = "c2c"
    #: Inter-superchip GPU-GPU NVLink fabric link.
    NVLINK = "nvlink"
    #: Inter-superchip CPU-CPU coherent socket link.
    SOCKET = "socket"


#: Traffic classes distinguished on every link, mirroring the three
#: classes the paper separates on NVLink-C2C (plus bulk shard exchange).
TRAFFIC_CLASSES = ("dma", "remote", "migration", "exchange")


@dataclass
class FabricLinkStats:
    """Per-direction, per-class byte/time accounting of one link.

    ``fwd`` is the a->b direction of the owning link. Per-class byte
    tallies and the direction totals are updated together, so the class
    sums always equal the bytes charged — the conservation invariant the
    property tests pin down.
    """

    fwd_bytes: int = 0
    rev_bytes: int = 0
    fwd_seconds: float = 0.0
    rev_seconds: float = 0.0
    fwd_by_class: dict[str, int] = field(default_factory=dict)
    rev_by_class: dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return self.fwd_bytes + self.rev_bytes

    def class_bytes(self, cls: str) -> int:
        return self.fwd_by_class.get(cls, 0) + self.rev_by_class.get(cls, 0)

    def conserved(self) -> bool:
        """Do the per-class tallies sum to the direction totals?"""
        return (
            sum(self.fwd_by_class.values()) == self.fwd_bytes
            and sum(self.rev_by_class.values()) == self.rev_bytes
        )


class FabricLink:
    """One directional-bandwidth link between two memory nodes."""

    def __init__(
        self,
        a: NodeId,
        b: NodeId,
        kind: LinkKind,
        *,
        fwd_bandwidth: float,
        rev_bandwidth: float,
        latency: float,
    ):
        if fwd_bandwidth <= 0 or rev_bandwidth <= 0:
            raise ValueError("link bandwidths must be positive")
        self.a = a
        self.b = b
        self.kind = kind
        self.fwd_bandwidth = fwd_bandwidth
        self.rev_bandwidth = rev_bandwidth
        self.latency = latency
        self.stats = FabricLinkStats()
        #: Optional structured event timeline (wired by the topology
        #: layer); every charge then emits a per-link transfer span.
        self.timeline = None

    @property
    def name(self) -> str:
        return f"{self.kind.value}:{self.a}->{self.b}"

    def endpoints(self) -> tuple[NodeId, NodeId]:
        return (self.a, self.b)

    def direction(self, src: NodeId, dst: NodeId) -> bool:
        """``True`` for the forward (a->b) direction of this link."""
        if (src, dst) == (self.a, self.b):
            return True
        if (src, dst) == (self.b, self.a):
            return False
        raise ValueError(f"{self.name} does not connect {src}->{dst}")

    def bandwidth(self, forward: bool) -> float:
        return self.fwd_bandwidth if forward else self.rev_bandwidth

    def charge(
        self, nbytes: int, *, forward: bool, cls: str, seconds: float = 0.0
    ) -> None:
        """Account ``nbytes`` of ``cls`` traffic in one direction."""
        if nbytes < 0:
            raise ValueError("cannot charge negative bytes")
        if cls not in TRAFFIC_CLASSES:
            raise ValueError(f"unknown traffic class {cls!r}")
        s = self.stats
        if forward:
            s.fwd_bytes += nbytes
            s.fwd_seconds += seconds
            s.fwd_by_class[cls] = s.fwd_by_class.get(cls, 0) + nbytes
        else:
            s.rev_bytes += nbytes
            s.rev_seconds += seconds
            s.rev_by_class[cls] = s.rev_by_class.get(cls, 0) + nbytes
        if self.timeline is not None:
            self.timeline.complete(
                f"{self.kind.value}:{cls}", self.timeline.now(), seconds,
                cat="fabric", track=f"fabric/{self.a}->{self.b}",
                bytes=nbytes, forward=forward,
            )

    def transfer_time(self, nbytes: int, *, forward: bool) -> float:
        """Streaming time across this one link (no charge)."""
        if nbytes <= 0:
            return 0.0
        return nbytes / self.bandwidth(forward) + self.latency

    def __repr__(self) -> str:
        return (
            f"<FabricLink {self.name} "
            f"{self.stats.fwd_bytes}B fwd / {self.stats.rev_bytes}B rev>"
        )
