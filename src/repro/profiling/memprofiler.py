"""The memory-utilisation profiler of Section 3.2.

Samples, at a fixed period (100 ms in the paper), two system-level
quantities:

* **CPU RSS** of the process — pages actively mapped to CPU physical
  memory, as ``/proc/<pid>/smaps_rollup`` reports;
* **GPU used memory** as ``nvidia-smi`` reports — system-wide, including
  the ~600 MB driver baseline, covering ``cudaMalloc``, managed, and
  system-allocated GPU-resident pages.

The resulting time series are the raw material of the paper's Figures 4
and 5 (hotspot and Quantum Volume memory-usage-over-time).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mem.subsystem import MemorySubsystem
from ..sim.engine import SimClock, TickListener


@dataclass
class MemorySample:
    time: float
    rss_bytes: int
    gpu_used_bytes: int


@dataclass
class MemoryProfile:
    """A recorded profile with convenience accessors for the figures."""

    samples: list[MemorySample] = field(default_factory=list)
    annotations: list[tuple[float, str]] = field(default_factory=list)

    @property
    def times(self) -> list[float]:
        return [s.time for s in self.samples]

    @property
    def rss_series(self) -> list[int]:
        return [s.rss_bytes for s in self.samples]

    @property
    def gpu_series(self) -> list[int]:
        return [s.gpu_used_bytes for s in self.samples]

    def peak_gpu_bytes(self) -> int:
        """``M_peak`` for the oversubscription ratio (Section 3.2)."""
        return max((s.gpu_used_bytes for s in self.samples), default=0)

    def peak_rss_bytes(self) -> int:
        return max((s.rss_bytes for s in self.samples), default=0)

    def at(self, t: float) -> MemorySample:
        """The last sample at or before simulated time ``t``."""
        if not self.samples:
            raise ValueError("profile is empty")
        i = bisect_right([s.time for s in self.samples], t)
        return self.samples[max(i - 1, 0)]

    def phase_slice(self, start: float, stop: float) -> "MemoryProfile":
        return MemoryProfile(
            samples=[s for s in self.samples if start <= s.time < stop],
            annotations=[a for a in self.annotations if start <= a[0] < stop],
        )


class MemoryProfiler:
    """Periodic sampler over simulated time.

    Usage::

        profiler = MemoryProfiler(gh.clock, gh.mem, period=0.1)
        with profiler:
            run_application(gh)
        profile = profiler.profile
    """

    def __init__(
        self,
        clock: SimClock,
        mem: "MemorySubsystem",
        period: float | None = None,
    ):
        self.clock = clock
        self.mem = mem
        self.period = period or mem.config.profiler_sample_period
        self.profile = MemoryProfile()
        self._listener: TickListener | None = None

    def _sample(self, t: float) -> None:
        self.profile.samples.append(
            MemorySample(
                time=t,
                rss_bytes=self.mem.process_rss_bytes(),
                gpu_used_bytes=self.mem.gpu_used_bytes(),
            )
        )

    def annotate(self, label: str) -> None:
        """Mark the current time (phase boundaries in the figures)."""
        self.profile.annotations.append((self.clock.now, label))

    def start(self) -> None:
        if self._listener is not None:
            raise RuntimeError("profiler already running")
        self._sample(self.clock.now)  # initial sample at start
        self._listener = self.clock.add_tick_listener(self.period, self._sample)

    def stop(self) -> None:
        if self._listener is not None:
            self.clock.remove_tick_listener(self._listener)
            self._listener = None
            self._sample(self.clock.now)  # final sample

    def __enter__(self) -> "MemoryProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
