"""Access-trace recording and replay.

Records every access batch the memory subsystem processes — allocation,
processor, page set (compactly), access shape, read/write — so a
workload's memory behaviour can be:

* inspected offline (pattern classification, reuse distance, footprint);
* replayed onto a *differently configured* system (other page size,
  migration threshold, first-touch policy) without re-running the
  application logic — the cheapest way to sweep configurations over an
  expensive workload.

Recording wraps ``MemorySubsystem.access`` non-invasively; traces
serialise to JSON lines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from typing import TYPE_CHECKING

from ..mem.coherence import AccessShape
from ..mem.pageset import PageSet
from ..mem.pagetable import AllocKind
from ..sim.config import Processor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mem.subsystem import MemorySubsystem


@dataclass
class TraceRecord:
    """One access batch, with the page set stored compactly."""

    alloc_name: str
    alloc_kind: str
    alloc_bytes: int
    page_size: int
    processor: str
    write: bool
    useful_bytes: int
    element_bytes: int
    density: float
    #: ``("range", start, stop)``, ``("runs", [[start, stop], ..])``, or
    #: ``("indices", [..])``.
    pages: tuple

    def to_json(self) -> str:
        d = self.__dict__.copy()
        if d["pages"][0] == "indices":
            d["pages"] = ("indices", [int(i) for i in d["pages"][1]])
        return json.dumps(d)

    @staticmethod
    def from_json(line: str) -> "TraceRecord":
        d = json.loads(line)
        d["pages"] = tuple(d["pages"])
        return TraceRecord(**d)

    def pageset(self) -> PageSet:
        kind = self.pages[0]
        if kind == "range":
            return PageSet.range(self.pages[1], self.pages[2])
        if kind == "runs":
            return PageSet.from_runs(self.pages[1])
        return PageSet.of(np.asarray(self.pages[1], dtype=np.int64))

    def shape(self) -> AccessShape:
        return AccessShape(
            useful_bytes=self.useful_bytes,
            element_bytes=self.element_bytes,
            density=self.density,
        )


@dataclass
class AccessTrace:
    """An ordered list of recorded access batches with analysis helpers."""
    records: list[TraceRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    # -- analysis -----------------------------------------------------------

    def footprint_bytes(self) -> dict[str, int]:
        """Peak unique bytes touched per allocation."""
        out: dict[str, int] = {}
        touched: dict[str, set] = {}
        sizes: dict[str, int] = {}
        page_sizes: dict[str, int] = {}
        for rec in self.records:
            pages = touched.setdefault(rec.alloc_name, set())
            ps = rec.pageset()
            if ps.is_range:
                pages.update(range(ps.start, ps.stop))
            elif ps.runs is not None:
                for lo, hi in ps.runs:
                    pages.update(range(lo, hi))
            else:
                pages.update(int(i) for i in ps.indices())
            sizes[rec.alloc_name] = rec.alloc_bytes
            page_sizes[rec.alloc_name] = rec.page_size
        for name, pages in touched.items():
            out[name] = min(len(pages) * page_sizes[name], sizes[name])
        return out

    def gpu_first_touch_fraction(self) -> float:
        """Fraction of the touched footprint first-written by the GPU."""
        first_writer: dict[str, str] = {}
        for rec in self.records:
            if rec.write and rec.alloc_name not in first_writer:
                first_writer[rec.alloc_name] = rec.processor
        footprint = self.footprint_bytes()
        total = sum(footprint.values())
        if total == 0:
            return 0.0
        gpu = sum(
            footprint.get(name, 0)
            for name, proc in first_writer.items()
            if proc == "gpu"
        )
        return gpu / total

    def gpu_write_fraction(self) -> float:
        gpu = [r for r in self.records if r.processor == "gpu"]
        if not gpu:
            return 0.0
        return sum(1 for r in gpu if r.write) / len(gpu)

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        with path.open("w") as fh:
            for rec in self.records:
                fh.write(rec.to_json() + "\n")
        return path

    @staticmethod
    def load(path: str | Path) -> "AccessTrace":
        trace = AccessTrace()
        for line in Path(path).read_text().splitlines():
            if line.strip():
                trace.records.append(TraceRecord.from_json(line))
        return trace


#: Page sets larger than this are stored as ranges-of-bounds rather than
#: full index lists, keeping traces compact.
_MAX_STORED_INDICES = 4096


def _compact(pages: PageSet) -> tuple:
    if pages.is_range:
        return ("range", pages.start, pages.stop)
    if pages.runs is not None:
        return ("runs", [[lo, hi] for lo, hi in pages.runs])
    if pages.count > _MAX_STORED_INDICES:
        # Degrade gracefully: record the bounding range (documented loss
        # of sparsity information for huge gathers).
        return ("range", pages.start, pages.stop)
    return ("indices", pages.indices().tolist())


class TraceRecorder:
    """Context manager wrapping a subsystem's access path."""

    def __init__(self, mem: "MemorySubsystem"):
        self.mem = mem
        self.trace = AccessTrace()
        self._original = None

    def __enter__(self) -> "TraceRecorder":
        if self._original is not None:
            raise RuntimeError("recorder already active")
        self._original = self.mem.access

        def recording_access(processor, alloc, pages, shape, *, write=False,
                             now=0.0):
            clipped = pages.clip(alloc.n_pages)
            self.trace.records.append(
                TraceRecord(
                    alloc_name=alloc.name,
                    alloc_kind=alloc.kind.value,
                    alloc_bytes=alloc.nbytes,
                    page_size=alloc.page_size,
                    processor=processor.value,
                    write=write,
                    useful_bytes=shape.useful_bytes,
                    element_bytes=shape.element_bytes,
                    density=shape.density,
                    pages=_compact(clipped),
                )
            )
            return self._original(
                processor, alloc, pages, shape, write=write, now=now
            )

        self.mem.access = recording_access
        return self

    def __exit__(self, *exc) -> None:
        assert self._original is not None
        # Remove the instance-level wrapper so lookup falls back to the
        # class method.
        del self.mem.access
        self._original = None


def replay(
    trace: AccessTrace, gh, *, epoch_every: int = 1
) -> dict[str, float]:
    """Replay a trace onto a fresh :class:`GraceHopperSystem`.

    Allocations are recreated by name/kind/size on first appearance;
    access batches are re-issued in order, servicing migrations every
    ``epoch_every`` GPU batches. Returns summary metrics.
    """
    allocs: dict[str, object] = {}
    gpu_batches = 0
    t0 = gh.now
    for rec in trace:
        alloc = allocs.get(rec.alloc_name)
        if alloc is None:
            alloc = gh.mem.allocate(
                AllocKind(rec.alloc_kind), rec.alloc_bytes, name=rec.alloc_name
            )
            allocs[rec.alloc_name] = alloc
        proc = Processor(rec.processor)
        if proc is Processor.GPU:
            gpu_batches += 1
            if gpu_batches % max(epoch_every, 1) == 0:
                gh.mem.begin_epoch()
        result = gh.mem.access(
            proc, alloc, rec.pageset(), rec.shape(),
            write=rec.write, now=gh.now,
        )
        cost = (
            result.fault_seconds
            + result.remote_seconds
            + result.transfer_seconds
            + result.hbm_bytes / gh.config.hbm_bandwidth
            + result.lpddr_bytes / gh.config.cpu_memory_bandwidth
        )
        gh.clock.advance(cost, activity=f"replay:{rec.alloc_name}")
    return {
        "replay_seconds": gh.now - t0,
        "allocations": len(allocs),
        "batches": len(trace),
        "c2c_read_bytes": gh.counters.total.c2c_read_bytes,
        "pages_migrated_h2d": gh.counters.total.pages_migrated_h2d,
    }
