"""Unified event-timeline observability across the whole stack.

The profiling stack so far answers *what* happened (``counters``),
*how much* of one quantity over time (``memprofiler``), and *which
access batches* ran (``trace``) — but not *when and in what order* the
mechanisms the paper separates (fault service, migration, eviction,
remote access, fabric transfers, serve dispatch) actually fired. This
module is that missing substrate: a low-overhead structured event layer
with

* **spans** (begin/end pairs or retrospective complete events with a
  known duration), **instant events**, and **counter tracks**;
* a bounded **ring buffer** (oldest events drop first, with a dropped
  count, so a long run can never exhaust memory);
* export to **Chrome/Perfetto trace JSON** (load ``trace.json`` at
  https://ui.perfetto.dev) and **JSON-lines** (round-trippable via
  :meth:`Timeline.read_jsonl`);
* an in-process **analysis API** — :meth:`Timeline.spans`,
  :meth:`Timeline.attribution` (per-phase time attribution with nested
  child time excluded), :meth:`Timeline.critical_path` — so tests and
  notebooks query timelines directly instead of parsing dumps.

Timelines are strictly observational: emission never touches model
state, so simulated results (and the golden fingerprints) are identical
with timelines on or off. Emission is opt-in three ways — per config
(``SystemConfig.timeline``), globally (``REPRO_TIMELINE=1``), or for one
code region (:class:`TimelineSession`, which ``repro-bench trace``
uses). When none of the three is active every producer holds ``None``
and the hot paths skip emission entirely (a single attribute test).

Two time domains coexist: simulator-side timelines stamp events with
*simulated* seconds (:attr:`SimClock.now`), serving-side timelines with
wall-clock ``time.monotonic()`` and OS process/thread ids
(``tag_os_ids=True``). Merged exports keep them apart as separate
Perfetto "processes".
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator

#: Environment variable enabling timelines globally (like REPRO_SANITIZE).
ENV_FLAG = "REPRO_TIMELINE"

#: Default ring-buffer capacity (events); the oldest events drop first.
DEFAULT_CAPACITY = 1 << 16

#: Module-wide count of events ever emitted (all timelines). The
#: disabled-mode regression test pins this: with no timeline active, the
#: counter must not move — proof the hot paths did no emission work.
TOTAL_EMITTED = 0

#: Perfetto phase codes used: B/E (nested span), X (complete span with
#: duration), i (instant), C (counter), M (metadata; export-only).
_PHASES = ("B", "E", "X", "i", "C")


class TimelineEvent:
    """One structured event. ``ts``/``dur`` are seconds in the owning
    timeline's domain; ``pid``/``tid`` are OS ids when the timeline tags
    them, else ``None`` (the exporter lays tracks out synthetically)."""

    __slots__ = ("ts", "ph", "name", "cat", "track", "dur", "args", "pid", "tid")

    def __init__(self, ts, ph, name, cat, track, dur=None, args=None,
                 pid=None, tid=None):
        self.ts = ts
        self.ph = ph
        self.name = name
        self.cat = cat
        self.track = track
        self.dur = dur
        self.args = args
        self.pid = pid
        self.tid = tid

    def to_dict(self) -> dict:
        d = {"ts": self.ts, "ph": self.ph, "name": self.name,
             "cat": self.cat, "track": self.track}
        if self.dur is not None:
            d["dur"] = self.dur
        if self.args:
            d["args"] = self.args
        if self.pid is not None:
            d["pid"] = self.pid
        if self.tid is not None:
            d["tid"] = self.tid
        return d

    @staticmethod
    def from_dict(d: dict) -> "TimelineEvent":
        return TimelineEvent(
            d["ts"], d["ph"], d["name"], d.get("cat", ""), d.get("track", ""),
            d.get("dur"), d.get("args"), d.get("pid"), d.get("tid"),
        )

    def __repr__(self) -> str:
        dur = f" dur={self.dur * 1e3:.3f}ms" if self.dur is not None else ""
        return f"<{self.ph} {self.name!r} @ {self.ts * 1e3:.3f}ms{dur}>"


class Span:
    """One reconstructed span (an X event, or a paired B/E)."""

    __slots__ = ("name", "cat", "track", "start", "duration", "args")

    def __init__(self, name, cat, track, start, duration, args=None):
        self.name = name
        self.cat = cat
        self.track = track
        self.start = start
        self.duration = duration
        self.args = args or {}

    @property
    def end(self) -> float:
        return self.start + self.duration

    def __repr__(self) -> str:
        return (
            f"<Span {self.name!r} [{self.start * 1e3:.3f}, "
            f"{self.end * 1e3:.3f}] ms>"
        )


class Timeline:
    """A ring-buffered structured event log over one time domain.

    ``time_fn`` supplies the current time in seconds (simulated or
    wall-clock); ``tag_os_ids`` stamps every event with the emitting OS
    process and thread id (the serving layer's mode).
    """

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_CAPACITY,
        time_fn: Callable[[], float] | None = None,
        tag_os_ids: bool = False,
        name: str = "sim",
    ):
        if capacity < 1:
            raise ValueError("timeline capacity must be positive")
        self.capacity = capacity
        self.name = name
        self.tag_os_ids = tag_os_ids
        self._time_fn = time_fn or time.monotonic
        self._events: deque[TimelineEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self.emitted = 0

    # -- time --------------------------------------------------------------

    def now(self) -> float:
        return self._time_fn()

    # -- emission ----------------------------------------------------------

    def _emit(self, ev: TimelineEvent) -> None:
        global TOTAL_EMITTED
        if self.tag_os_ids:
            ev.pid = os.getpid()
            ev.tid = threading.get_ident()
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(ev)
        self.emitted += 1
        TOTAL_EMITTED += 1

    def begin(self, name: str, *, cat: str = "", track: str = "main",
              **args: Any) -> None:
        """Open a nested span on ``track`` (close with :meth:`end`)."""
        self._emit(TimelineEvent(self.now(), "B", name, cat, track,
                                 args=args or None))

    def end(self, name: str = "", *, track: str = "main", **args: Any) -> None:
        """Close the innermost open span on ``track``."""
        self._emit(TimelineEvent(self.now(), "E", name, "", track,
                                 args=args or None))

    @contextmanager
    def span(self, name: str, *, cat: str = "", track: str = "main",
             **args: Any) -> Iterator[None]:
        self.begin(name, cat=cat, track=track, **args)
        try:
            yield
        finally:
            self.end(name, track=track)

    def complete(self, name: str, start: float, duration: float, *,
                 cat: str = "", track: str = "main", **args: Any) -> None:
        """Record a span whose duration is already known (an ``X``
        event) — the natural shape for model-computed costs."""
        self._emit(TimelineEvent(start, "X", name, cat, track,
                                 dur=max(0.0, duration), args=args or None))

    def instant(self, name: str, *, cat: str = "", track: str = "main",
                **args: Any) -> None:
        self._emit(TimelineEvent(self.now(), "i", name, cat, track,
                                 args=args or None))

    def counter(self, track: str, *, cat: str = "", **values: float) -> None:
        """Record a counter-track sample (Perfetto renders it as an
        area chart)."""
        self._emit(TimelineEvent(self.now(), "C", track, cat, track,
                                 args=dict(values)))

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def events(self, ph: str | None = None, *, cat: str | None = None,
               track: str | None = None) -> list[TimelineEvent]:
        return [
            ev for ev in self._events
            if (ph is None or ev.ph == ph)
            and (cat is None or ev.cat == cat)
            and (track is None or ev.track == track)
        ]

    def spans(self, name: str | None = None, *, cat: str | None = None,
              track: str | None = None) -> list[Span]:
        """All reconstructed spans, sorted by start time.

        X events map one-to-one; B/E pairs are matched per track in
        stack order (an unmatched B closes at the last event's
        timestamp; an unmatched E — its B fell off the ring — is
        dropped).
        """
        out: list[Span] = []
        stacks: dict[str, list[TimelineEvent]] = {}
        last_ts = 0.0
        for ev in self._events:
            last_ts = max(last_ts, ev.ts + (ev.dur or 0.0))
            if ev.ph == "X":
                out.append(Span(ev.name, ev.cat, ev.track, ev.ts, ev.dur or 0.0,
                                ev.args))
            elif ev.ph == "B":
                stacks.setdefault(ev.track, []).append(ev)
            elif ev.ph == "E":
                stack = stacks.get(ev.track)
                if stack:
                    b = stack.pop()
                    out.append(Span(b.name, b.cat, b.track, b.ts,
                                    max(0.0, ev.ts - b.ts), b.args))
        for stack in stacks.values():
            for b in stack:  # still-open spans close at the horizon
                out.append(Span(b.name, b.cat, b.track, b.ts,
                                max(0.0, last_ts - b.ts), b.args))
        out.sort(key=lambda s: s.start)
        return [
            s for s in out
            if (name is None or s.name == name)
            and (cat is None or s.cat == cat)
            and (track is None or s.track == track)
        ]

    def instants(self, name: str | None = None, *, cat: str | None = None,
                 track: str | None = None) -> list[TimelineEvent]:
        return [
            ev for ev in self.events("i", cat=cat, track=track)
            if name is None or ev.name == name
        ]

    # -- analysis ----------------------------------------------------------

    def attribution(self, *, by: str = "name",
                    track: str | None = None) -> dict[str, float]:
        """Self-time per span ``name``/``cat``/``track``: each span's
        duration minus the time covered by spans nested inside it on the
        same track — the "where did the time actually go" view the
        paper's per-mechanism breakdowns need."""
        if by not in ("name", "cat", "track"):
            raise ValueError("by must be 'name', 'cat', or 'track'")
        totals: dict[str, float] = {}
        per_track: dict[str, list[Span]] = {}
        for s in self.spans(track=track):
            per_track.setdefault(s.track, []).append(s)
        for spans in per_track.values():
            spans.sort(key=lambda s: (s.start, -s.duration))
            open_stack: list[tuple[Span, str]] = []
            for s in spans:
                while open_stack and open_stack[-1][0].end <= s.start:
                    open_stack.pop()
                key = getattr(s, by)
                totals[key] = totals.get(key, 0.0) + s.duration
                if open_stack and s.end <= open_stack[-1][0].end + 1e-12:
                    parent_key = open_stack[-1][1]
                    totals[parent_key] = totals.get(parent_key, 0.0) - s.duration
                    open_stack.append((s, key))
                elif not open_stack:
                    open_stack.append((s, key))
        return {k: v for k, v in totals.items()}

    def critical_path(self, track: str | None = None) -> list[dict]:
        """Top-level spans (not nested inside another span of the same
        track) in time order, with the gaps between them labelled
        ``(idle)`` — the sequential breakdown of where a run's wall time
        went."""
        spans = self.spans(track=track)
        top: list[Span] = []
        horizon = -float("inf")
        for s in sorted(spans, key=lambda s: (s.start, -s.duration)):
            if s.start >= horizon - 1e-12:
                top.append(s)
                horizon = max(horizon, s.end)
            else:
                horizon = max(horizon, s.end)
        out: list[dict] = []
        cursor: float | None = None
        for s in top:
            if cursor is not None and s.start - cursor > 1e-12:
                out.append({"name": "(idle)", "start": cursor,
                            "duration": s.start - cursor, "cat": ""})
            out.append({"name": s.name, "start": s.start,
                        "duration": s.duration, "cat": s.cat})
            cursor = max(cursor if cursor is not None else s.end, s.end)
        return out

    # -- persistence -------------------------------------------------------

    def to_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        with path.open("w") as fh:
            fh.write(json.dumps({"timeline": self.name,
                                 "dropped": self.dropped}) + "\n")
            for ev in self._events:
                fh.write(json.dumps(ev.to_dict()) + "\n")
        return path

    @classmethod
    def read_jsonl(cls, path: str | Path) -> "Timeline":
        lines = Path(path).read_text().splitlines()
        header = json.loads(lines[0]) if lines else {}
        tl = cls(capacity=max(len(lines), 1),
                 name=header.get("timeline", "loaded"))
        tl.dropped = header.get("dropped", 0)
        for line in lines[1:]:
            if line.strip():
                tl._events.append(TimelineEvent.from_dict(json.loads(line)))
        return tl

    def __repr__(self) -> str:
        return (
            f"<Timeline {self.name!r} {len(self._events)} event(s), "
            f"{self.dropped} dropped>"
        )


# ---------------------------------------------------------------------------
# Perfetto (Chrome trace JSON) export and validation
# ---------------------------------------------------------------------------


def to_perfetto(timelines: list[Timeline]) -> dict:
    """Merge timelines into one Chrome/Perfetto trace dict.

    Each timeline becomes one Perfetto "process" (its name as the
    process name) and each of its tracks one "thread", so the sim,
    memory, fabric and serve layers stack as separate swim-lanes.
    Events are sorted by timestamp per timeline (stable, so B/E nesting
    order is preserved at equal timestamps) and any still-open B span is
    closed at the trace horizon — the exported JSON always satisfies
    :func:`validate_perfetto`. OS ids captured at emission are preserved
    in ``args`` (``os_pid``/``os_tid``).
    """
    trace_events: list[dict] = []
    for pid, tl in enumerate(timelines, start=1):
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": tl.name},
        })
        track_tids: dict[str, int] = {}
        events = sorted(tl._events, key=lambda ev: ev.ts)
        horizon = 0.0
        open_stacks: dict[int, list[dict]] = {}
        for ev in events:
            tid = track_tids.get(ev.track)
            if tid is None:
                tid = track_tids[ev.track] = len(track_tids) + 1
                trace_events.append({
                    "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                    "args": {"name": ev.track},
                })
            horizon = max(horizon, ev.ts + (ev.dur or 0.0))
            args = dict(ev.args) if ev.args else {}
            if ev.pid is not None:
                args["os_pid"] = ev.pid
            if ev.tid is not None:
                args["os_tid"] = ev.tid
            out = {
                "ph": ev.ph, "name": ev.name, "cat": ev.cat or "default",
                "ts": ev.ts * 1e6, "pid": pid, "tid": tid,
            }
            if ev.ph == "X":
                out["dur"] = (ev.dur or 0.0) * 1e6
            if ev.ph == "i":
                out["s"] = "t"  # thread-scoped instant
            if ev.ph == "C":
                out["args"] = args or {"value": 0}
            elif args:
                out["args"] = args
            if ev.ph == "B":
                open_stacks.setdefault(tid, []).append(out)
            elif ev.ph == "E":
                stack = open_stacks.get(tid)
                if not stack:
                    continue  # orphan E (its B dropped from the ring)
                stack.pop()
            trace_events.append(out)
        for tid, stack in open_stacks.items():
            for _ in stack:  # close still-open spans at the horizon
                trace_events.append({
                    "ph": "E", "name": "", "cat": "default",
                    "ts": horizon * 1e6, "pid": pid, "tid": tid,
                })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.profiling.timeline",
            "dropped_events": sum(tl.dropped for tl in timelines),
        },
    }


def export_perfetto(timelines: list[Timeline], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(to_perfetto(timelines)))
    return path


def validate_perfetto(trace: dict) -> bool:
    """Validate a Chrome/Perfetto trace dict; raises ``ValueError`` on
    the first structural violation (also the CI trace-smoke gate):

    * ``traceEvents`` is a list of phase-tagged events;
    * per (pid, tid), timestamps are monotonically non-decreasing;
    * per (pid, tid), every ``B`` has a matching later ``E`` (stack
      discipline) and no ``E`` arrives without an open ``B``;
    * ``X`` events carry a non-negative ``dur``.
    """
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    last_ts: dict[tuple, float] = {}
    stacks: dict[tuple, list[str]] = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue
        if ph not in _PHASES:
            raise ValueError(f"event {i}: unknown phase {ph!r}")
        key = (ev.get("pid"), ev.get("tid"))
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            raise ValueError(f"event {i}: missing/invalid ts")
        if ts < last_ts.get(key, -float("inf")):
            raise ValueError(
                f"event {i}: ts {ts} not monotone on track {key} "
                f"(last {last_ts[key]})"
            )
        last_ts[key] = ts
        if ph == "X":
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                raise ValueError(f"event {i}: X event needs dur >= 0")
        elif ph == "B":
            stacks.setdefault(key, []).append(ev.get("name", ""))
        elif ph == "E":
            stack = stacks.get(key)
            if not stack:
                raise ValueError(f"event {i}: E without an open B on {key}")
            stack.pop()
    for key, stack in stacks.items():
        if stack:
            raise ValueError(f"unclosed B span(s) {stack} on track {key}")
    return True


# ---------------------------------------------------------------------------
# Opt-in plumbing: config/env flags and collection sessions
# ---------------------------------------------------------------------------

_ACTIVE_SESSION: "TimelineSession | None" = None


class TimelineSession:
    """Collects every timeline created while active (context manager).

    ``repro-bench trace`` wraps one experiment run in a session: systems
    constructed anywhere inside it create and register timelines even
    though their configs don't set ``timeline=True``, and the merged
    set exports as one multi-process Perfetto trace.
    """

    def __init__(self, capacity: int | None = None):
        self.capacity = capacity
        self.timelines: list[Timeline] = []
        self._prev: TimelineSession | None = None

    def __enter__(self) -> "TimelineSession":
        global _ACTIVE_SESSION
        self._prev = _ACTIVE_SESSION
        _ACTIVE_SESSION = self
        return self

    def __exit__(self, *exc) -> None:
        global _ACTIVE_SESSION
        _ACTIVE_SESSION = self._prev

    def register(self, timeline: Timeline) -> Timeline:
        taken = {tl.name for tl in self.timelines}
        if timeline.name in taken:
            # One session often sees many same-named systems (one per
            # app/mode run); number them so Perfetto processes stay
            # distinguishable.
            n = 2
            while f"{timeline.name}#{n}" in taken:
                n += 1
            timeline.name = f"{timeline.name}#{n}"
        self.timelines.append(timeline)
        return timeline

    def export_perfetto(self, path: str | Path) -> Path:
        return export_perfetto(self.timelines, path)

    def merged_spans(self, **kwargs) -> list[Span]:
        out: list[Span] = []
        for tl in self.timelines:
            out.extend(tl.spans(**kwargs))
        return out


def current_session() -> TimelineSession | None:
    return _ACTIVE_SESSION


def timeline_requested(config=None) -> bool:
    """Is timeline emission enabled — by config field, ``REPRO_TIMELINE``,
    or an active :class:`TimelineSession`?"""
    if config is not None and getattr(config, "timeline", False):
        return True
    if os.environ.get(ENV_FLAG, "") not in ("", "0"):
        return True
    return _ACTIVE_SESSION is not None


def maybe_timeline(
    config,
    time_fn: Callable[[], float],
    *,
    name: str = "sim",
    tag_os_ids: bool = False,
) -> Timeline | None:
    """A registered :class:`Timeline` when emission is requested, else
    ``None`` (producers guard on that, keeping disabled-mode hot paths
    emission-free)."""
    if not timeline_requested(config):
        return None
    capacity = getattr(config, "timeline_capacity", None) or DEFAULT_CAPACITY
    session = current_session()
    if session is not None and session.capacity:
        capacity = session.capacity
    tl = Timeline(capacity=capacity, time_fn=time_fn, name=name,
                  tag_os_ids=tag_os_ids)
    if session is not None:
        session.register(tl)
    return tl
