"""Hardware performance counters.

The paper quantifies per-kernel memory traffic with Nsight Compute's
Memory Workload Analysis (traffic over NVLink-C2C, system memory, and
global GPU memory — Section 3.2) and uses L1<->L2 traffic as an indicator
of the data rate feeding the GPU's compute units (Figure 12). This module
provides the equivalent counter set over simulator state: a global
cumulative set plus per-kernel deltas captured around each launch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields


class Histogram:
    """Log-bucketed histogram of non-negative samples.

    Buckets grow geometrically (``base`` factor, smallest upper edge
    ``min_edge``), so a handful of integer counters cover nine orders of
    magnitude — the same trick Nsight uses for latency distributions.
    Shared by the profiling layer and the serving metrics
    (:mod:`repro.serve.metrics`): queue-wait and end-to-end latency both
    span microseconds to minutes, where fixed-width buckets are useless.
    """

    def __init__(self, base: float = 2.0, min_edge: float = 1e-4):
        if base <= 1.0:
            raise ValueError("base must be > 1")
        self.base = base
        self.min_edge = min_edge
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def _index(self, value: float) -> int:
        if value <= self.min_edge:
            return 0
        return max(0, math.ceil(math.log(value / self.min_edge, self.base)))

    def edge(self, index: int) -> float:
        """Upper edge of bucket ``index`` (samples in it are ``<= edge``)."""
        return self.min_edge * self.base**index

    def record(self, value: float) -> None:
        value = max(0.0, float(value))
        idx = self._index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1
        self.count += 1
        self.total += value
        self.total_sq += value * value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (upper edge of the bucket the
        rank falls in — a conservative estimate)."""
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(self.count * min(max(p, 0.0), 100.0) / 100.0))
        seen = 0
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= rank:
                return min(self.edge(idx), self.max or 0.0)
        return self.max or 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def second_moment(self) -> float:
        """``E[X²]`` of the recorded samples — exact (accumulated from
        raw values, not reconstructed from buckets). With the mean this
        gives the variance and SCV that M/G/c queueing needs."""
        return self.total_sq / self.count if self.count else 0.0

    def scv(self) -> float:
        """Squared coefficient of variation, ``Var/Mean²`` (0 if empty
        or degenerate)."""
        mean = self.mean
        if mean <= 0.0:
            return 0.0
        var = max(0.0, self.second_moment() - mean * mean)
        return var / (mean * mean)

    def snapshot(self) -> dict:
        """JSON-able summary (count/mean/min/max + key percentiles)."""
        return {
            "count": self.count,
            "mean": round(self.mean, 6),
            "min": round(self.min or 0.0, 6),
            "max": round(self.max or 0.0, 6),
            "p50": round(self.percentile(50), 6),
            "p90": round(self.percentile(90), 6),
            "p99": round(self.percentile(99), 6),
            "p999": round(self.percentile(99.9), 6),
        }

    def __repr__(self) -> str:
        return f"<Histogram n={self.count} mean={self.mean:.4g}>"


@dataclass
class CounterSet:
    """A snapshot-able bundle of monotonically increasing counters."""

    # Traffic (bytes)
    hbm_read_bytes: int = 0
    hbm_write_bytes: int = 0
    lpddr_read_bytes: int = 0
    lpddr_write_bytes: int = 0
    c2c_read_bytes: int = 0  # remote reads by the GPU over NVLink-C2C
    c2c_write_bytes: int = 0
    cpu_remote_read_bytes: int = 0  # CPU reads of GPU-resident memory
    cpu_remote_write_bytes: int = 0
    l1l2_bytes: int = 0
    migration_h2d_bytes: int = 0
    migration_d2h_bytes: int = 0
    eviction_bytes: int = 0
    explicit_copy_bytes: int = 0
    fabric_bytes: int = 0  # payload bytes sent over the inter-chip fabric
    fabric_hop_bytes: int = 0  # payload x links traversed (fabric load)

    # Events
    gpu_replayable_faults: int = 0
    cpu_page_faults: int = 0
    managed_far_faults: int = 0
    migration_notifications: int = 0
    pages_migrated_h2d: int = 0
    pages_migrated_d2h: int = 0
    pages_evicted: int = 0
    tlb_shootdowns: int = 0
    fabric_transfers: int = 0
    pages_spilled_remote: int = 0  # first-touch spills to a peer chip's DDR

    def snapshot(self) -> "CounterSet":
        return CounterSet(**{f.name: getattr(self, f.name) for f in fields(self)})

    def delta(self, earlier: "CounterSet") -> "CounterSet":
        return CounterSet(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def add(self, **increments: int) -> None:
        for name, value in increments.items():
            setattr(self, name, getattr(self, name) + value)

    @property
    def gpu_memory_read_bytes(self) -> int:
        """'Reads from GPU memory' as reported in Figure 10."""
        return self.hbm_read_bytes

    @property
    def nvlink_read_bytes(self) -> int:
        """'Remote memory reads over NVLink-C2C' as in Figure 10."""
        return self.c2c_read_bytes

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class KernelTrafficRecord:
    """Per-kernel Memory Workload Analysis row (Nsight Compute style)."""

    kernel: str
    start: float
    duration: float
    counters: CounterSet
    tags: dict[str, str] = field(default_factory=dict)

    @property
    def l1l2_throughput(self) -> float:
        """Bytes/s between L1 and L2 during this kernel (Figure 12)."""
        return self.counters.l1l2_bytes / self.duration if self.duration else 0.0

    def tier_throughput(self) -> dict[str, float]:
        """Throughput by memory tier, the Figure 12 decomposition."""
        if not self.duration:
            return {"gpu_memory": 0.0, "nvlink_c2c": 0.0, "l1l2": 0.0}
        c = self.counters
        return {
            "gpu_memory": (c.hbm_read_bytes + c.hbm_write_bytes) / self.duration,
            "nvlink_c2c": (c.c2c_read_bytes + c.c2c_write_bytes) / self.duration,
            "l1l2": c.l1l2_bytes / self.duration,
        }


#: Valid counter names, checked on the hot :meth:`HardwareCounters.bump`
#: path so typos fail at the call site rather than at flush time.
_COUNTER_NAMES = frozenset(f.name for f in fields(CounterSet))


class HardwareCounters:
    """Global counters plus a per-kernel capture facility.

    Hot-path producers (the memory subsystem processes several counter
    updates per access batch) call :meth:`bump`, which accumulates into a
    plain dict; the pending increments are folded into the
    :class:`CounterSet` only when totals are actually read (per kernel
    epoch), turning thousands of per-access ``setattr`` round trips into
    one dict merge.
    """

    def __init__(self) -> None:
        self._total = CounterSet()
        self._pending: dict[str, int] = {}
        self.kernel_records: list[KernelTrafficRecord] = []
        self._kernel_start_snapshot: CounterSet | None = None
        self._kernel_start_time: float = 0.0
        self._kernel_name: str = ""

    @property
    def total(self) -> CounterSet:
        """The cumulative counter set (pending increments flushed)."""
        if self._pending:
            self._flush()
        return self._total

    def bump(self, **increments: int) -> None:
        """Accumulate counter increments without touching the dataclass."""
        pending = self._pending
        for name, value in increments.items():
            if name not in _COUNTER_NAMES:
                raise AttributeError(f"unknown counter {name!r}")
            pending[name] = pending.get(name, 0) + value

    def _flush(self) -> None:
        self._total.add(**self._pending)
        self._pending.clear()

    def begin_kernel(self, name: str, now: float) -> None:
        self._kernel_name = name
        self._kernel_start_time = now
        self._kernel_start_snapshot = self.total.snapshot()

    def end_kernel(self, now: float, **tags: str) -> KernelTrafficRecord:
        assert self._kernel_start_snapshot is not None, "no kernel in flight"
        rec = KernelTrafficRecord(
            kernel=self._kernel_name,
            start=self._kernel_start_time,
            duration=now - self._kernel_start_time,
            counters=self.total.delta(self._kernel_start_snapshot),
            tags=dict(tags),
        )
        self.kernel_records.append(rec)
        self._kernel_start_snapshot = None
        return rec

    def records_for(self, kernel_prefix: str) -> list[KernelTrafficRecord]:
        return [
            r for r in self.kernel_records if r.kernel.startswith(kernel_prefix)
        ]
