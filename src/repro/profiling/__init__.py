"""Profiling tools: memory-utilisation sampler, hardware counters,
Nsight-style event traces (Section 3.2 of the paper)."""

from .counters import CounterSet, HardwareCounters, Histogram, KernelTrafficRecord
from .memprofiler import MemoryProfile, MemoryProfiler, MemorySample
from .nsight import FaultSummary, NsightTrace
from .timeline import (
    Span,
    Timeline,
    TimelineEvent,
    TimelineSession,
    export_perfetto,
    maybe_timeline,
    timeline_requested,
    to_perfetto,
    validate_perfetto,
)
from .trace import AccessTrace, TraceRecord, TraceRecorder, replay

__all__ = [
    "CounterSet",
    "HardwareCounters",
    "Histogram",
    "KernelTrafficRecord",
    "MemoryProfile",
    "MemoryProfiler",
    "MemorySample",
    "NsightTrace",
    "FaultSummary",
    "AccessTrace",
    "TraceRecord",
    "TraceRecorder",
    "replay",
    "Span",
    "Timeline",
    "TimelineEvent",
    "TimelineSession",
    "export_perfetto",
    "maybe_timeline",
    "timeline_requested",
    "to_perfetto",
    "validate_perfetto",
]
