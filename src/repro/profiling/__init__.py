"""Profiling tools: memory-utilisation sampler, hardware counters,
Nsight-style event traces (Section 3.2 of the paper)."""

from .counters import CounterSet, HardwareCounters, Histogram, KernelTrafficRecord
from .memprofiler import MemoryProfile, MemoryProfiler, MemorySample
from .nsight import FaultSummary, NsightTrace
from .trace import AccessTrace, TraceRecord, TraceRecorder, replay

__all__ = [
    "CounterSet",
    "HardwareCounters",
    "Histogram",
    "KernelTrafficRecord",
    "MemoryProfile",
    "MemoryProfiler",
    "MemorySample",
    "NsightTrace",
    "FaultSummary",
    "AccessTrace",
    "TraceRecord",
    "TraceRecorder",
    "replay",
]
