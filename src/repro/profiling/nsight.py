"""Nsight-Systems-style event tracing.

The paper uses Nsight Systems to identify GPU page faults and page
migrations — and notes the tool is *only reliable for managed memory*,
because system-memory faults are serviced by the OS through the SMMU and
never surface in the CUDA driver's trace (Section 3.2). The
:class:`NsightTrace` view reproduces that asymmetry: by default it shows
managed-memory events only, with an ``include_system`` escape hatch that
exposes what the real tool cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mem.subsystem import MemorySubsystem
from ..profiling.counters import HardwareCounters
from ..sim.engine import SimClock


@dataclass
class FaultSummary:
    managed_far_faults: int
    gpu_replayable_faults: int | None  # None when hidden (tool limitation)
    cpu_page_faults: int
    pages_migrated_h2d: int
    pages_migrated_d2h: int
    pages_evicted: int


class NsightTrace:
    """A post-mortem view over counters and the clock's trace log."""

    def __init__(
        self,
        clock: SimClock,
        counters: HardwareCounters,
        mem: "MemorySubsystem",
    ):
        self.clock = clock
        self.counters = counters
        self.mem = mem

    def fault_summary(self, include_system: bool = False) -> FaultSummary:
        t = self.counters.total
        return FaultSummary(
            managed_far_faults=t.managed_far_faults,
            gpu_replayable_faults=(
                t.gpu_replayable_faults if include_system else None
            ),
            cpu_page_faults=t.cpu_page_faults,
            pages_migrated_h2d=t.pages_migrated_h2d,
            pages_migrated_d2h=t.pages_migrated_d2h,
            pages_evicted=t.pages_evicted,
        )

    def kernel_timeline(self) -> list[dict]:
        """Kernel launches as (start, duration, traffic) rows."""
        return [
            {
                "kernel": r.kernel,
                "start": r.start,
                "duration": r.duration,
                "hbm_bytes": r.counters.hbm_read_bytes + r.counters.hbm_write_bytes,
                "c2c_bytes": r.counters.c2c_read_bytes + r.counters.c2c_write_bytes,
                "l1l2_throughput": r.l1l2_throughput,
            }
            for r in self.counters.kernel_records
        ]

    def migration_events(self) -> list[dict]:
        """Migration/eviction activity entries from the clock trace."""
        rows = []
        for ev in self.clock.events("activity"):
            name = ev.payload.get("name", "")
            if name.startswith(("prefetch:", "free:")) or "migrat" in name:
                rows.append({"time": ev.time, **ev.payload})
        return rows
