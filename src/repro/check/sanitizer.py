"""Opt-in invariant checking for the simulated memory subsystem.

The paper's conclusions rest on *relative* numbers from the simulated
GH200 memory model, so a silent invariant break — bytes unaccounted
after a REMOTE spill, counters diverging from link traffic, the
incremental location tallies drifting from the per-page state array —
corrupts every table the repo regenerates. :class:`MemSanitizer` is the
guard rail: an epoch-hooked checker wired into
:meth:`~repro.mem.subsystem.MemorySubsystem.begin_epoch` / ``access`` /
``allocate`` / ``free`` that re-derives every conservation law from
first principles and raises a structured :class:`InvariantViolation`
(sim-time, epoch, offending allocation) the moment one fails.

Enabling it:

* ``SystemConfig(sanitize=True)`` — per-system opt-in;
* ``REPRO_SANITIZE=1`` in the environment — global switch, inherited by
  forked worker processes (the serving layer and the parallel runner
  propagate it explicitly for non-fork start methods).

The checks are deliberately written against the *naive* definitions
(``np.bincount`` over the state array, sums over ``by_tag``) rather than
the incremental fast-path bookkeeping they validate.

Invariants enforced
-------------------

1. **Pool sanity** — ``0 <= used <= capacity``, ``used`` equals the sum
   of its ``by_tag`` ledger, no negative tag entries, ``peak >= used``.
2. **Residency exclusivity** — every page holds exactly one valid
   :class:`~repro.sim.config.Location`, and the incrementally maintained
   ``_loc_counts`` equal a fresh ``bincount`` of the state array.
3. **Byte conservation** — each live allocation's per-pool ``by_tag``
   reservations equal its resident bytes per location, including peer
   pools reached through the fabric port for ``Location.REMOTE`` pages,
   and ``remote_pages_by_node`` sums to ``pages_at(REMOTE)``.
4. **Counter conservation** — migration/eviction byte counters bracket
   their page counters times the page size (the upper bound allows the
   managed thrash amplification), eviction traffic never exceeds D2H
   migration traffic, the NVLink-C2C per-class ledgers are conserved,
   and the link's "remote" class equals the sum of the four remote-access
   hardware counters; SMMU/GMMU stats agree with the counter set.
5. **Page-table coherence** — no freed or mis-kinded allocation is
   registered, managed allocations appear in both tables and in the
   managed manager, device allocations are fully GPU-resident.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

import numpy as np

from ..mem.pagetable import Allocation, AllocKind
from ..sim.config import Location

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mem.subsystem import MemorySubsystem

#: Environment switch equivalent to ``SystemConfig.sanitize=True``.
ENV_FLAG = "REPRO_SANITIZE"


def sanitize_requested(config=None) -> bool:
    """Is sanitizing enabled — by config field or ``REPRO_SANITIZE``?"""
    if config is not None and getattr(config, "sanitize", False):
        return True
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


class InvariantViolation(AssertionError):
    """A memory-model invariant failed.

    Structured: carries the invariant name, the simulated time and epoch
    at which the check ran, the offending allocation (when one is
    implicated), and a details dict with the numbers that disagreed.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        sim_time: float = 0.0,
        epoch: int = 0,
        alloc=None,
        details: dict | None = None,
    ):
        self.invariant = invariant
        self.message = message
        self.sim_time = float(sim_time)
        self.epoch = int(epoch)
        self.alloc_name = (
            alloc if (alloc is None or isinstance(alloc, str)) else alloc.name
        )
        self.details = dict(details or {})
        super().__init__(self._format())

    def _format(self) -> str:
        where = f"sim_time={self.sim_time:.9f}s epoch={self.epoch}"
        who = f" alloc={self.alloc_name}" if self.alloc_name else ""
        extra = f" details={self.details}" if self.details else ""
        return f"[{self.invariant}] {self.message} ({where}{who}){extra}"


class MemSanitizer:
    """Epoch-hooked invariant checker over one :class:`MemorySubsystem`.

    Hook protocol (called by the subsystem when sanitizing is enabled):

    * :meth:`after_alloc` / :meth:`after_free` — full sweep;
    * :meth:`begin_epoch` — bumps the epoch counter, full sweep (runs
      *after* the migrator serviced its notifications);
    * :meth:`after_access` — cheap path: the touched allocation plus the
      pool and counter ledgers (a full sweep per access batch would make
      large runs quadratic in the allocation count).
    """

    def __init__(self, mem: "MemorySubsystem"):
        self.mem = mem
        self.epoch = 0
        #: Simulated time of the most recent hooked event; a
        #: :class:`~repro.core.runtime.GraceHopperSystem` overrides this
        #: with its clock via :attr:`clock`.
        self.last_now = 0.0
        self.clock = None
        self.checks_run = 0

    # -- context ----------------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now if self.clock is not None else self.last_now

    def _fail(
        self, invariant: str, message: str, *, alloc=None, details=None
    ) -> None:
        raise InvariantViolation(
            invariant,
            message,
            sim_time=self.now,
            epoch=self.epoch,
            alloc=alloc,
            details=details,
        )

    # -- hooks ------------------------------------------------------------

    def after_alloc(self, alloc: Allocation) -> None:
        self.check_all(alloc=alloc)

    def after_free(self, alloc: Allocation) -> None:
        self._check_freed_drained(alloc)
        self.check_all()

    def begin_epoch(self) -> None:
        self.epoch += 1
        self.check_all()

    def after_access(self, alloc: Allocation, now: float) -> None:
        self.last_now = max(self.last_now, float(now))
        self.checks_run += 1
        self.check_pools()
        self.check_alloc(alloc)
        self.check_counters()

    # -- full sweep -------------------------------------------------------

    def check_all(self, alloc: Allocation | None = None) -> None:
        """Run every invariant; ``alloc`` is only used for attribution."""
        self.checks_run += 1
        self.check_pools()
        self.check_tables()
        for a in self._live_allocations():
            self.check_alloc(a)
        self.check_counters()

    def _live_allocations(self) -> list[Allocation]:
        seen: dict[int, Allocation] = {}
        for table in (self.mem.system_table, self.mem.gpu_table):
            for a in table.live_allocations():
                seen[a.aid] = a
        return list(seen.values())

    # -- invariant groups -------------------------------------------------

    def check_pools(self) -> None:
        for pool in (self.mem.physical.cpu, self.mem.physical.gpu):
            if not 0 <= pool.used <= pool.capacity:
                self._fail(
                    "pool-capacity",
                    f"{pool.name}: used bytes outside [0, capacity]",
                    details={"used": pool.used, "capacity": pool.capacity},
                )
            ledger = sum(pool.by_tag.values())
            if ledger != pool.used:
                self._fail(
                    "pool-ledger",
                    f"{pool.name}: by_tag ledger disagrees with used bytes",
                    details={"by_tag_sum": ledger, "used": pool.used},
                )
            for tag, nbytes in pool.by_tag.items():
                if nbytes < 0:
                    self._fail(
                        "pool-ledger",
                        f"{pool.name}: negative reservation under tag {tag!r}",
                        details={"tag": tag, "bytes": nbytes},
                    )
            if pool.peak < pool.used:
                self._fail(
                    "pool-peak",
                    f"{pool.name}: peak fell below current occupancy",
                    details={"peak": pool.peak, "used": pool.used},
                )

    def check_alloc(self, alloc: Allocation) -> None:
        """Residency exclusivity + byte conservation for one allocation."""
        state = alloc.state
        if state.size and (state.min() < 0 or state.max() >= len(Location)):
            self._fail(
                "residency-exclusivity",
                "state array holds an out-of-range location value",
                alloc=alloc,
                details={"min": int(state.min()), "max": int(state.max())},
            )
        fresh = np.bincount(state.astype(np.int64), minlength=len(Location))
        if not np.array_equal(fresh, alloc._loc_counts):
            self._fail(
                "residency-exclusivity",
                "incremental location counts drifted from the state array",
                alloc=alloc,
                details={
                    "recount": fresh.tolist(),
                    "incremental": alloc._loc_counts.tolist(),
                },
            )
        if int(fresh.sum()) != alloc.n_pages:
            self._fail(
                "residency-exclusivity",
                "location counts do not partition the allocation",
                alloc=alloc,
                details={"sum": int(fresh.sum()), "n_pages": alloc.n_pages},
            )
        fresh_blocks = np.bincount(
            np.flatnonzero(state == Location.GPU) // alloc.block_pages,
            minlength=alloc.n_blocks,
        )
        if not np.array_equal(fresh_blocks, alloc._gpu_block_counts):
            self._fail(
                "residency-exclusivity",
                "incremental per-block GPU counts drifted from the state "
                "array",
                alloc=alloc,
                details={
                    "recount_sum": int(fresh_blocks.sum()),
                    "incremental_sum": int(alloc._gpu_block_counts.sum()),
                },
            )
        self._check_remote_map(alloc)
        if not alloc.freed:
            self._check_alloc_bytes(alloc)

    def _check_remote_map(self, alloc: Allocation) -> None:
        n_remote = alloc.pages_at(Location.REMOTE)
        mapped = sum(alloc.remote_pages_by_node.values())
        if mapped != n_remote:
            self._fail(
                "remote-accounting",
                "remote_pages_by_node does not sum to the REMOTE residency",
                alloc=alloc,
                details={"by_node_sum": mapped, "pages_at_remote": n_remote},
            )
        if any(n <= 0 for n in alloc.remote_pages_by_node.values()):
            self._fail(
                "remote-accounting",
                "remote_pages_by_node holds a non-positive page count",
                alloc=alloc,
                details={
                    str(k): v for k, v in alloc.remote_pages_by_node.items()
                },
            )
        if n_remote and self.mem.fabric_port is None:
            self._fail(
                "remote-accounting",
                "REMOTE-resident pages on a system without a fabric port",
                alloc=alloc,
                details={"pages_at_remote": n_remote},
            )

    def _tag_for(self, alloc: Allocation) -> str:
        prefix = {
            AllocKind.SYSTEM: "sys:",
            AllocKind.MANAGED: "mng:",
            AllocKind.DEVICE: "dev:",
            AllocKind.HOST_PINNED: "pin:",
            AllocKind.NUMA_CPU: "pin:",
        }[alloc.kind]
        return f"{prefix}{alloc.aid}"

    def _check_alloc_bytes(self, alloc: Allocation) -> None:
        tag = self._tag_for(alloc)
        cpu_tag = self.mem.physical.cpu.by_tag.get(tag, 0)
        gpu_tag = self.mem.physical.gpu.by_tag.get(tag, 0)
        if alloc.kind is AllocKind.DEVICE:
            expect_cpu = 0
            expect_gpu = alloc.bytes_at(Location.GPU)
            if alloc.pages_at(Location.GPU) != alloc.n_pages:
                self._fail(
                    "byte-conservation",
                    "device allocation is not fully GPU-resident",
                    alloc=alloc,
                    details={"gpu_pages": alloc.pages_at(Location.GPU)},
                )
        elif alloc.kind in (AllocKind.HOST_PINNED, AllocKind.NUMA_CPU):
            expect_cpu = alloc.bytes_at(Location.CPU)
            expect_gpu = 0
            if alloc.pages_at(Location.CPU) != alloc.n_pages:
                self._fail(
                    "byte-conservation",
                    "pinned allocation is not fully CPU-resident",
                    alloc=alloc,
                    details={"cpu_pages": alloc.pages_at(Location.CPU)},
                )
        else:  # SYSTEM / MANAGED share the CPU pool for CPU + CPU_PINNED
            expect_cpu = alloc.bytes_at(Location.CPU) + alloc.bytes_at(
                Location.CPU_PINNED
            )
            expect_gpu = alloc.bytes_at(Location.GPU)
            if (
                alloc.kind is AllocKind.SYSTEM
                and alloc.pages_at(Location.CPU_PINNED)
            ):
                self._fail(
                    "residency-exclusivity",
                    "system allocation holds CPU_PINNED pages (managed-only "
                    "state)",
                    alloc=alloc,
                    details={"pinned": alloc.pages_at(Location.CPU_PINNED)},
                )
            if (
                alloc.kind is AllocKind.MANAGED
                and alloc.pages_at(Location.REMOTE)
            ):
                self._fail(
                    "remote-accounting",
                    "managed allocation holds REMOTE pages (system-only "
                    "state)",
                    alloc=alloc,
                    details={"remote": alloc.pages_at(Location.REMOTE)},
                )
        if self.mem.physical.cpu is self.mem.physical.gpu:
            # Unified-pool backend (e.g. "upm"): one ledger entry backs
            # both residency classes — conservation is against the sum.
            if cpu_tag != expect_cpu + expect_gpu:
                self._fail(
                    "byte-conservation",
                    "unified pool reservation disagrees with resident bytes",
                    alloc=alloc,
                    details={
                        "pool_tag_bytes": cpu_tag,
                        "resident": expect_cpu + expect_gpu,
                    },
                )
        else:
            if cpu_tag != expect_cpu:
                self._fail(
                    "byte-conservation",
                    "CPU pool reservation disagrees with CPU-resident bytes",
                    alloc=alloc,
                    details={"pool_tag_bytes": cpu_tag, "resident": expect_cpu},
                )
            if gpu_tag != expect_gpu:
                self._fail(
                    "byte-conservation",
                    "GPU pool reservation disagrees with GPU-resident bytes",
                    alloc=alloc,
                    details={"pool_tag_bytes": gpu_tag, "resident": expect_gpu},
                )
        if alloc.remote_pages_by_node and self.mem.fabric_port is not None:
            page_size = alloc.page_size
            for node, n_pages in alloc.remote_pages_by_node.items():
                peer = self.mem.fabric_port.pool(node).by_tag.get(tag, 0)
                if peer != n_pages * page_size:
                    self._fail(
                        "byte-conservation",
                        f"peer pool {node} reservation disagrees with the "
                        "spilled page count",
                        alloc=alloc,
                        details={
                            "node": str(node),
                            "pool_tag_bytes": peer,
                            "expected": n_pages * page_size,
                        },
                    )

    def _check_freed_drained(self, alloc: Allocation) -> None:
        """After ``free``, no pool may still hold bytes under its tag."""
        tag = self._tag_for(alloc)
        for pool in (self.mem.physical.cpu, self.mem.physical.gpu):
            left = pool.by_tag.get(tag, 0)
            if left:
                self._fail(
                    "byte-conservation",
                    f"{pool.name}: freed allocation still holds bytes",
                    alloc=alloc,
                    details={"tag": tag, "bytes": left},
                )
        if alloc.remote_pages_by_node:
            self._fail(
                "remote-accounting",
                "freed allocation still records remote residency",
                alloc=alloc,
                details={
                    str(k): v for k, v in alloc.remote_pages_by_node.items()
                },
            )

    def check_tables(self) -> None:
        mem = self.mem
        for alloc in mem.system_table.live_allocations():
            if alloc.freed:
                self._fail(
                    "table-coherence",
                    "freed allocation still registered in the system table",
                    alloc=alloc,
                )
            if alloc.kind is AllocKind.DEVICE:
                self._fail(
                    "table-coherence",
                    "device allocation registered in the system page table",
                    alloc=alloc,
                )
            if alloc.kind is AllocKind.MANAGED:
                if alloc.aid not in mem.gpu_table.allocations:
                    self._fail(
                        "table-coherence",
                        "managed allocation missing from the GPU page table",
                        alloc=alloc,
                    )
                if alloc.aid not in mem.managed.allocations:
                    self._fail(
                        "table-coherence",
                        "managed allocation missing from the managed manager",
                        alloc=alloc,
                    )
        for alloc in mem.gpu_table.live_allocations():
            if alloc.freed:
                self._fail(
                    "table-coherence",
                    "freed allocation still registered in the GPU table",
                    alloc=alloc,
                )
            if alloc.kind not in (AllocKind.DEVICE, AllocKind.MANAGED):
                self._fail(
                    "table-coherence",
                    "non-device, non-managed allocation in the GPU table",
                    alloc=alloc,
                )

    def check_counters(self) -> None:
        mem = self.mem
        total = mem.counters.total  # flushes pending increments
        for name, value in total.as_dict().items():
            if value < 0:
                self._fail(
                    "counter-conservation",
                    f"counter {name} went negative",
                    details={name: value},
                )
        page = mem.config.system_page_size
        thrash = mem.config.eviction_thrash_factor()
        for bytes_name, pages_name in (
            ("migration_h2d_bytes", "pages_migrated_h2d"),
            ("migration_d2h_bytes", "pages_migrated_d2h"),
        ):
            nbytes = getattr(total, bytes_name)
            npages = getattr(total, pages_name)
            lo = npages * page
            hi = int(npages * page * max(thrash, 1.0))
            if not lo <= nbytes <= hi:
                self._fail(
                    "counter-conservation",
                    f"{bytes_name} outside the [pages, pages*thrash] "
                    "bracket of its page counter",
                    details={
                        bytes_name: nbytes,
                        pages_name: npages,
                        "page_size": page,
                        "thrash": thrash,
                    },
                )
        if total.eviction_bytes > total.migration_d2h_bytes:
            self._fail(
                "counter-conservation",
                "eviction traffic exceeds D2H migration traffic",
                details={
                    "eviction_bytes": total.eviction_bytes,
                    "migration_d2h_bytes": total.migration_d2h_bytes,
                },
            )
        if total.pages_evicted > total.pages_migrated_d2h:
            self._fail(
                "counter-conservation",
                "evicted page count exceeds D2H-migrated page count",
                details={
                    "pages_evicted": total.pages_evicted,
                    "pages_migrated_d2h": total.pages_migrated_d2h,
                },
            )
        stats = mem.link.stats
        if not stats.conserved():
            self._fail(
                "link-conservation",
                "NVLink-C2C per-class byte tallies do not sum to the "
                "direction totals",
                details={
                    "h2d": stats.h2d_bytes,
                    "h2d_by_class": dict(stats.h2d_by_class),
                    "d2h": stats.d2h_bytes,
                    "d2h_by_class": dict(stats.d2h_by_class),
                },
            )
        remote_counters = (
            total.c2c_read_bytes
            + total.c2c_write_bytes
            + total.cpu_remote_read_bytes
            + total.cpu_remote_write_bytes
        )
        if stats.class_bytes("remote") != remote_counters:
            self._fail(
                "link-conservation",
                'link "remote" traffic class disagrees with the remote-'
                "access hardware counters",
                details={
                    "link_remote_bytes": stats.class_bytes("remote"),
                    "counter_sum": remote_counters,
                },
            )
        if stats.class_bytes("migration") > total.migration_h2d_bytes:
            self._fail(
                "link-conservation",
                'link "migration" class exceeds the H2D migration counter',
                details={
                    "link_migration_bytes": stats.class_bytes("migration"),
                    "migration_h2d_bytes": total.migration_h2d_bytes,
                },
            )
        smmu = mem.smmu.stats
        if total.gpu_replayable_faults != smmu.replayable_faults:
            self._fail(
                "counter-conservation",
                "gpu_replayable_faults counter disagrees with SMMU stats",
                details={
                    "counter": total.gpu_replayable_faults,
                    "smmu": smmu.replayable_faults,
                },
            )
        if total.cpu_page_faults < smmu.cpu_faults:
            self._fail(
                "counter-conservation",
                "cpu_page_faults counter fell below the SMMU fault tally",
                details={
                    "counter": total.cpu_page_faults,
                    "smmu": smmu.cpu_faults,
                },
            )
        if mem.gmmu.stats.far_faults < total.managed_far_faults:
            self._fail(
                "counter-conservation",
                "GMMU far-fault tally fell below the managed_far_faults "
                "counter",
                details={
                    "gmmu": mem.gmmu.stats.far_faults,
                    "counter": total.managed_far_faults,
                },
            )
        if total.fabric_hop_bytes < total.fabric_bytes:
            self._fail(
                "counter-conservation",
                "fabric hop-bytes fell below fabric payload bytes",
                details={
                    "fabric_hop_bytes": total.fabric_hop_bytes,
                    "fabric_bytes": total.fabric_bytes,
                },
            )
