"""Differential conformance: a deliberately naive per-page reference.

The production memory subsystem earns its speed from symbolic interval
PageSets, incrementally maintained location tallies, batched counter
flushes, and closed-form batch costs. :class:`ReferenceSystem` computes
the *same model* the slow, obvious way — every allocation's residency is
a plain Python list with one entry per page, subsets and counts are
``for`` loops, access counters are per-page integers — and
:func:`differential_replay` runs a recorded
:class:`~repro.profiling.trace.AccessTrace` through both executors,
demanding **identical** hardware counters, link traffic, and simulated
time. Any vectorisation bug in the fast paths (a wrong mask, a stale
tally, an off-by-one interval split) shows up as a non-empty
:attr:`DifferentialReport.divergent`.

Exactness: counters and wire traffic are integers, so equality is exact
by construction. Times are floats; the reference reproduces the
production model's *batch-level* cost expressions in the same operation
order (per-page naivety applies to state and integer bookkeeping), so
time equality is also exact — asserted with ``==``, no tolerance.

The reference intentionally does not import the production ``PageSet``,
``Allocation``, ``MemoryPool``, counter, or wire-traffic code: the only
shared dependency is :class:`~repro.sim.config.SystemConfig`, whose cost
constants are the model's specification. Single-superchip scope (traces
are recorded on single-chip systems; the fabric has its own conservation
checks in :class:`~repro.topology.ShardedSystem`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.config import (
    FirstTouchPolicy,
    Location,
    Processor,
    SystemConfig,
)

#: CounterSet field names the reference tracks (kept in sync with
#: :class:`repro.profiling.counters.CounterSet` by the conformance tests,
#: which compare full ``as_dict()`` output).
_COUNTERS = (
    "hbm_read_bytes",
    "hbm_write_bytes",
    "lpddr_read_bytes",
    "lpddr_write_bytes",
    "c2c_read_bytes",
    "c2c_write_bytes",
    "cpu_remote_read_bytes",
    "cpu_remote_write_bytes",
    "l1l2_bytes",
    "migration_h2d_bytes",
    "migration_d2h_bytes",
    "eviction_bytes",
    "explicit_copy_bytes",
    "fabric_bytes",
    "fabric_hop_bytes",
    "gpu_replayable_faults",
    "cpu_page_faults",
    "managed_far_faults",
    "migration_notifications",
    "pages_migrated_h2d",
    "pages_migrated_d2h",
    "pages_evicted",
    "tlb_shootdowns",
    "fabric_transfers",
    "pages_spilled_remote",
)


def _wire_bytes(useful: int, element: int, density: float, line: int) -> int:
    """Per-page wire traffic, derived independently from the model spec:
    dense streams move their useful bytes; sparse streams interpolate
    between perfectly coalesced lines and one line per element, capped by
    the distinct lines in the scatter span."""
    if useful == 0:
        return 0
    if density >= 1.0:
        return useful
    n_elements = max(1, useful // element)
    per_line = max(1, line // element)
    coalesced = -(-n_elements // per_line)
    lines = int(coalesced + (n_elements - coalesced) * (1.0 - density))
    span = int(useful / density)
    lines = min(lines, max(1, -(-span // line)))
    return lines * line


class _RefPool:
    """A byte-accounted pool: capacity, used, nothing clever."""

    def __init__(self, name: str, capacity: int):
        self.name = name
        self.capacity = capacity
        self.used = 0

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def reserve(self, nbytes: int) -> None:
        if nbytes > self.free:
            raise RuntimeError(
                f"reference {self.name}: reservation exceeds capacity"
            )
        self.used += nbytes

    def release(self, nbytes: int) -> None:
        if nbytes > self.used:
            raise RuntimeError(f"reference {self.name}: released too much")
        self.used -= nbytes


class _RefLink:
    """NVLink-C2C cost/accounting, one formula per traffic class."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.h2d_bytes = 0
        self.d2h_bytes = 0
        self.by_class: dict[str, int] = {}

    def _account(self, nbytes: int, src: Processor, cls: str) -> None:
        if src is Processor.CPU:
            self.h2d_bytes += nbytes
        else:
            self.d2h_bytes += nbytes
        self.by_class[cls] = self.by_class.get(cls, 0) + nbytes

    def streaming_time(self, nbytes, src, dst) -> float:
        if nbytes <= 0:
            return 0.0
        t = nbytes / self.config.c2c_bandwidth(src, dst) + self.config.c2c_latency
        self._account(nbytes, src, "dma")
        return t

    def remote_access_time(self, nbytes, accessor, *, efficiency=None) -> float:
        if nbytes <= 0:
            return 0.0
        eff = (
            self.config.remote_access_efficiency
            if efficiency is None
            else efficiency
        )
        src = accessor.other
        bw = self.config.c2c_bandwidth(src, accessor) * eff
        t = nbytes / bw + self.config.c2c_latency
        self._account(nbytes, src, "remote")
        return t

    def migration_time(self, nbytes, src, dst) -> float:
        if nbytes <= 0:
            return 0.0
        bw = (
            self.config.c2c_bandwidth(src, dst)
            * self.config.migration_bandwidth_fraction
        )
        t = nbytes / bw + self.config.c2c_latency
        self._account(nbytes, src, "migration")
        return t


class _RefAlloc:
    """Per-page state, the obvious way: one list entry per page."""

    def __init__(self, name: str, kind: str, nbytes: int, config: SystemConfig):
        self.name = name
        self.kind = kind
        self.nbytes = int(nbytes)
        self.page_size = config.system_page_size
        self.n_pages = -(-self.nbytes // self.page_size)
        initial = Location.UNMAPPED
        if kind == "device":
            initial = Location.GPU
        elif kind in ("host-pinned", "numa-cpu"):
            initial = Location.CPU
        self.loc = [initial] * self.n_pages
        self.counter = [0] * self.n_pages
        self.block_pages = max(1, config.pages_per_gpu_page)
        self.n_blocks = -(-self.n_pages // self.block_pages)
        self.last_touch = [0.0] * self.n_blocks
        self.oversubscription_pinned = False

    # -- naive set helpers (each one a loop; no interval algebra) --------

    def pages_at(self, loc: Location) -> int:
        return sum(1 for s in self.loc if s is loc)

    def subset(self, pages: list[int], loc: Location) -> list[int]:
        return [p for p in pages if self.loc[p] is loc]

    def counts(self, pages: list[int]) -> dict[Location, int]:
        out = {loc: 0 for loc in Location}
        for p in pages:
            out[self.loc[p]] += 1
        return out

    def set_location(self, pages: list[int], loc: Location) -> None:
        for p in pages:
            self.loc[p] = loc

    def expand_blocks(self, pages: list[int], grain: int) -> list[int]:
        """align_down + clip: every page of every ``grain``-block any of
        ``pages`` falls in, within bounds."""
        out: set[int] = set()
        for p in pages:
            start = (p // grain) * grain
            out.update(range(start, min(start + grain, self.n_pages)))
        return sorted(out)

    def blocks_of(self, pages: list[int]) -> list[int]:
        return sorted({p // self.block_pages for p in pages})

    def touch_blocks(self, pages: list[int], now: float) -> None:
        for b in self.blocks_of(pages):
            self.last_touch[b] = now

    def lru_gpu_blocks(self) -> list[int]:
        gpu_blocks = self.blocks_of(
            [p for p in range(self.n_pages) if self.loc[p] is Location.GPU]
        )
        return sorted(gpu_blocks, key=lambda b: self.last_touch[b])

    def block_pageset(self, block: int) -> list[int]:
        start = block * self.block_pages
        return list(range(start, min(start + self.block_pages, self.n_pages)))


class _Out:
    """Mutable cost accumulator mirroring AccessResult/ManagedOutcome."""

    def __init__(self):
        self.fault_seconds = 0.0
        self.remote_seconds = 0.0
        self.transfer_seconds = 0.0
        self.hbm_bytes = 0
        self.lpddr_bytes = 0
        self.remote_bytes = 0


class ReferenceSystem:
    """Naive per-page executor for recorded access traces."""

    def __init__(self, config: SystemConfig | None = None):
        self.config = config or SystemConfig()
        self.time = 0.0
        self.counters = {name: 0 for name in _COUNTERS}
        self.link = _RefLink(self.config)
        self.cpu = _RefPool("LPDDR5X", self.config.cpu_memory_bytes)
        self.gpu = _RefPool("HBM3", self.config.gpu_memory_bytes)
        self.gpu.reserve(self.config.gpu_driver_baseline_bytes)
        #: Registration order matters: the migrator and the LRU evictor
        #: both iterate allocations in it.
        self.allocs: dict[str, _RefAlloc] = {}

    def _bump(self, **kv: int) -> None:
        for name, value in kv.items():
            self.counters[name] += value

    # -- trace replay ----------------------------------------------------

    def run(self, trace, *, epoch_every: int = 1) -> dict:
        """Replay ``trace`` start to finish; returns the summary dict."""
        gpu_batches = 0
        for rec in trace:
            alloc = self.allocs.get(rec.alloc_name)
            if alloc is None:
                alloc = self._allocate(rec)
            proc = Processor(rec.processor)
            if proc is Processor.GPU:
                gpu_batches += 1
                if gpu_batches % max(epoch_every, 1) == 0:
                    self.begin_epoch()
            pages = self._decode_pages(rec, alloc)
            out = self.access(proc, alloc, pages, rec, write=rec.write)
            cost = (
                out.fault_seconds
                + out.remote_seconds
                + out.transfer_seconds
                + out.hbm_bytes / self.config.hbm_bandwidth
                + out.lpddr_bytes / self.config.cpu_memory_bandwidth
            )
            self.time = self.time + cost
        return self.summary()

    def summary(self) -> dict:
        return {
            "replay_seconds": self.time,
            "counters": dict(self.counters),
            "link": {
                "h2d_bytes": self.link.h2d_bytes,
                "d2h_bytes": self.link.d2h_bytes,
                **{
                    f"class_{cls}": n
                    for cls, n in sorted(self.link.by_class.items())
                },
            },
        }

    def _allocate(self, rec) -> _RefAlloc:
        alloc = _RefAlloc(
            rec.alloc_name, rec.alloc_kind, rec.alloc_bytes, self.config
        )
        if rec.alloc_kind == "device":
            self.gpu.reserve(alloc.n_pages * alloc.page_size)
        elif rec.alloc_kind in ("host-pinned", "numa-cpu"):
            self.cpu.reserve(alloc.n_pages * alloc.page_size)
        self.allocs[rec.alloc_name] = alloc
        return alloc

    @staticmethod
    def _decode_pages(rec, alloc: _RefAlloc) -> list[int]:
        kind = rec.pages[0]
        if kind == "range":
            pages = range(rec.pages[1], rec.pages[2])
        elif kind == "runs":
            pages = (p for lo, hi in rec.pages[1] for p in range(lo, hi))
        else:
            pages = rec.pages[1]
        return sorted({int(p) for p in pages if 0 <= int(p) < alloc.n_pages})

    # -- access dispatch -------------------------------------------------

    def access(self, proc, alloc, pages, rec, *, write: bool) -> _Out:
        out = _Out()
        if not pages:
            return out
        useful = rec.useful_bytes
        if alloc.kind == "managed":
            if proc is Processor.GPU:
                self._managed_gpu(alloc, pages, rec, out, write)
            else:
                self._managed_cpu(alloc, pages, rec, out, write)
        elif alloc.kind == "device":
            if proc is Processor.CPU:
                raise PermissionError(
                    f"{alloc.name}: cudaMalloc memory is not CPU-accessible"
                )
            nbytes = useful * len(pages)
            out.hbm_bytes += nbytes
            self._bump(
                **{("hbm_write_bytes" if write else "hbm_read_bytes"): nbytes}
            )
        elif alloc.kind in ("host-pinned", "numa-cpu"):
            self._pinned(proc, alloc, pages, rec, out, write)
        else:
            self._system(proc, alloc, pages, rec, out, write)
        return out

    def _per_page_wire(self, proc, rec) -> int:
        return _wire_bytes(
            rec.useful_bytes,
            rec.element_bytes,
            rec.density,
            self.config.cacheline_bytes(proc),
        )

    # -- system (malloc) -------------------------------------------------

    def _system(self, proc, alloc, pages, rec, out, write) -> None:
        cfg = self.config
        unmapped = alloc.subset(pages, Location.UNMAPPED)
        if unmapped:
            out.fault_seconds += self._first_touch(alloc, unmapped, proc)

        counts = alloc.counts(pages)
        if proc is Processor.GPU:
            n_local = counts[Location.GPU]
            n_remote = counts[Location.CPU] + counts[Location.CPU_PINNED]
        else:
            n_local = counts[Location.CPU] + counts[Location.CPU_PINNED]
            n_remote = counts[Location.GPU]

        local_bytes = rec.useful_bytes * n_local
        if proc is Processor.GPU:
            out.hbm_bytes += local_bytes
            self._bump(
                **{
                    (
                        "hbm_write_bytes" if write else "hbm_read_bytes"
                    ): local_bytes
                }
            )
        else:
            out.lpddr_bytes += local_bytes
            self._bump(
                **{
                    (
                        "lpddr_write_bytes" if write else "lpddr_read_bytes"
                    ): local_bytes
                }
            )

        if n_remote:
            wire = 0
            per_page = self._per_page_wire(proc, rec)
            for _ in range(n_remote):
                wire += per_page
            out.remote_bytes += wire
            out.remote_seconds += self.link.remote_access_time(wire, proc)
            if proc is Processor.GPU:
                self._bump(
                    **{("c2c_write_bytes" if write else "c2c_read_bytes"): wire}
                )
                if cfg.migration_enable:
                    per = max(
                        1,
                        (wire // max(n_remote, 1)) // cfg.cacheline_bytes_gpu,
                    )
                    for p in alloc.subset(pages, Location.CPU):
                        alloc.counter[p] += per
            else:
                self._bump(
                    **{
                        (
                            "cpu_remote_write_bytes"
                            if write
                            else "cpu_remote_read_bytes"
                        ): wire
                    }
                )

    def _first_touch(self, alloc, unmapped: list[int], proc) -> float:
        cfg = self.config
        page_size = cfg.system_page_size
        want_gpu = (
            proc is Processor.GPU
            and cfg.first_touch_policy is FirstTouchPolicy.ACCESSOR
        )
        gpu_part: list[int] = []
        if want_gpu:
            gpu_part = unmapped[: self.gpu.free // page_size]
        cpu_part = [p for p in unmapped if p not in set(gpu_part)]
        if gpu_part:
            alloc.set_location(gpu_part, Location.GPU)
            self.gpu.reserve(len(gpu_part) * page_size)
        if cpu_part:
            alloc.set_location(cpu_part, Location.CPU)
            self.cpu.reserve(len(cpu_part) * page_size)
        n = len(unmapped)
        seconds = 0.0
        if proc is Processor.GPU:
            seconds += n * cfg.gpu_replayable_fault_cost
            self._bump(gpu_replayable_faults=n)
        else:
            cost = n * cfg.cpu_fault_cost
            if cfg.autonuma_enable:
                cost += n * cfg.autonuma_hint_fault_cost
            seconds += cost
            self._bump(cpu_page_faults=n)
        seconds += (n * page_size) / cfg.fault_zeroing_bandwidth
        return seconds

    # -- pinned / numa ---------------------------------------------------

    def _pinned(self, proc, alloc, pages, rec, out, write) -> None:
        useful = rec.useful_bytes * len(pages)
        if proc is Processor.CPU:
            out.lpddr_bytes = useful
            self._bump(
                **{
                    (
                        "lpddr_write_bytes" if write else "lpddr_read_bytes"
                    ): useful
                }
            )
        else:
            wire = self._per_page_wire(proc, rec) * len(pages)
            out.remote_bytes = wire
            out.remote_seconds = self.link.remote_access_time(wire, proc)
            self._bump(
                **{("c2c_write_bytes" if write else "c2c_read_bytes"): wire}
            )

    # -- managed ---------------------------------------------------------

    def _managed_gpu(self, alloc, pages, rec, out, write) -> None:
        counts = alloc.counts(pages)  # snapshot gates the steps below
        alloc.touch_blocks(pages, self.time)

        n_gpu = counts[Location.GPU]
        if n_gpu:
            out.hbm_bytes += rec.useful_bytes * n_gpu

        if counts[Location.UNMAPPED]:
            self._managed_first_touch(
                alloc, alloc.subset(pages, Location.UNMAPPED), rec, out
            )

        if counts[Location.CPU]:
            cpu_pages = alloc.subset(pages, Location.CPU)
            if alloc.oversubscription_pinned:
                self._managed_remote(alloc, cpu_pages, rec, out)
            else:
                self._on_demand_migrate(alloc, cpu_pages, rec, out)

        if counts[Location.CPU_PINNED]:
            self._managed_remote(
                alloc, alloc.subset(pages, Location.CPU_PINNED), rec, out
            )

        if write:
            self._bump(
                hbm_write_bytes=out.hbm_bytes, c2c_write_bytes=out.remote_bytes
            )
        else:
            self._bump(
                hbm_read_bytes=out.hbm_bytes, c2c_read_bytes=out.remote_bytes
            )

    def _naturally_oversubscribed(self, alloc) -> bool:
        return alloc.nbytes > self.gpu.capacity - (
            self.config.gpu_driver_baseline_bytes
        )

    def _evict_bytes(self, needed: int) -> float:
        """LRU eviction across every managed allocation; returns seconds."""
        cfg = self.config
        if needed <= self.gpu.free:
            return 0.0
        target = needed - self.gpu.free
        freed = 0
        seconds = 0.0
        candidates = []
        for alloc in self.allocs.values():
            if alloc.kind != "managed":
                continue
            for block in alloc.lru_gpu_blocks():
                candidates.append((alloc.last_touch[block], alloc, block))
        candidates.sort(key=lambda c: c[0])
        for _, alloc, block in candidates:
            if freed >= target:
                break
            gpu_pages = alloc.subset(alloc.block_pageset(block), Location.GPU)
            if not gpu_pages:
                continue
            nbytes = len(gpu_pages) * cfg.system_page_size
            alloc.set_location(gpu_pages, Location.CPU)
            self.gpu.release(nbytes)
            self.cpu.reserve(nbytes)
            t = self.link.streaming_time(nbytes, Processor.GPU, Processor.CPU)
            seconds += t / cfg.eviction_bandwidth_fraction
            seconds += cfg.tlb_shootdown_cost + len(gpu_pages) * 1e-9
            freed += nbytes
            self._bump(
                eviction_bytes=nbytes,
                migration_d2h_bytes=nbytes,
                pages_evicted=len(gpu_pages),
                pages_migrated_d2h=len(gpu_pages),
                tlb_shootdowns=1,
            )
        return seconds

    def _managed_first_touch(self, alloc, pages, rec, out) -> None:
        cfg = self.config
        pages = alloc.subset(
            alloc.expand_blocks(pages, alloc.block_pages), Location.UNMAPPED
        )
        nbytes = len(pages) * cfg.system_page_size
        if nbytes == 0:
            return
        evict_t = self._evict_bytes(
            nbytes + cfg.managed_eviction_headroom_bytes
        )
        out.fault_seconds += evict_t
        fit_pages = max(
            self.gpu.free - cfg.managed_eviction_headroom_bytes, 0
        ) // cfg.system_page_size
        gpu_part = pages[:fit_pages]
        cpu_part = pages[fit_pages:]
        if gpu_part:
            alloc.set_location(gpu_part, Location.GPU)
            self.gpu.reserve(len(gpu_part) * cfg.system_page_size)
            n_blocks = len(alloc.blocks_of(gpu_part))
            out.fault_seconds += n_blocks * cfg.gpu_pte_create_cost
            out.hbm_bytes += rec.useful_bytes * len(gpu_part)
        if cpu_part:
            loc = (
                Location.CPU_PINNED
                if self._naturally_oversubscribed(alloc)
                else Location.CPU
            )
            alloc.set_location(cpu_part, loc)
            self.cpu.reserve(len(cpu_part) * cfg.system_page_size)
            out.fault_seconds += (
                len(alloc.blocks_of(cpu_part)) * cfg.managed_farfault_cost
            )
            out.remote_seconds += self.link.remote_access_time(
                rec.useful_bytes * len(cpu_part),
                Processor.GPU,
                efficiency=cfg.managed_remote_eff(),
            )
            out.remote_bytes += rec.useful_bytes * len(cpu_part)

    def _on_demand_migrate(self, alloc, cpu_pages, rec, out) -> None:
        cfg = self.config
        if self._naturally_oversubscribed(alloc):
            alloc.oversubscription_pinned = True
            alloc.set_location(cpu_pages, Location.CPU_PINNED)
            self._managed_remote(alloc, cpu_pages, rec, out)
            return
        nbytes = len(cpu_pages) * cfg.system_page_size
        evict_t = self._evict_bytes(
            nbytes + cfg.managed_eviction_headroom_bytes
        )
        thrash = cfg.eviction_thrash_factor() if evict_t > 0 else 1.0
        fit_pages = max(
            self.gpu.free - cfg.managed_eviction_headroom_bytes, 0
        ) // cfg.system_page_size
        move = cpu_pages[:fit_pages]
        rest = cpu_pages[fit_pages:]
        if move:
            moved_bytes = len(move) * cfg.system_page_size
            batches = -(-moved_bytes // cfg.managed_migration_granularity)
            out.fault_seconds += batches * cfg.managed_farfault_cost + evict_t
            effective = int(moved_bytes * thrash)
            out.transfer_seconds += self.link.streaming_time(
                effective, Processor.CPU, Processor.GPU
            )
            alloc.set_location(move, Location.GPU)
            self.cpu.release(moved_bytes)
            self.gpu.reserve(moved_bytes)
            out.hbm_bytes += rec.useful_bytes * len(move)
            self._bump(
                migration_h2d_bytes=effective,
                pages_migrated_h2d=len(move),
                managed_far_faults=batches,
            )
        if rest:
            self._streaming_thrash(alloc, rest, rec, out)

    def _streaming_thrash(self, alloc, pages, rec, out) -> None:
        cfg = self.config
        nbytes = len(pages) * cfg.system_page_size
        if nbytes == 0:
            return
        effective = int(nbytes * cfg.eviction_thrash_factor())
        batches = -(-nbytes // cfg.managed_migration_granularity)
        out.fault_seconds += batches * cfg.managed_farfault_cost
        out.transfer_seconds += self.link.streaming_time(
            effective, Processor.CPU, Processor.GPU
        )
        out.transfer_seconds += (
            self.link.streaming_time(effective, Processor.GPU, Processor.CPU)
            / cfg.eviction_bandwidth_fraction
        )
        out.hbm_bytes += rec.useful_bytes * len(pages)
        self._bump(
            migration_h2d_bytes=effective,
            migration_d2h_bytes=effective,
            eviction_bytes=effective,
            managed_far_faults=batches,
            pages_migrated_h2d=len(pages),
            pages_migrated_d2h=len(pages),
            pages_evicted=len(pages),
        )

    def _managed_remote(self, alloc, pages, rec, out) -> None:
        wire = self._per_page_wire(Processor.GPU, rec) * len(pages)
        out.remote_seconds += self.link.remote_access_time(
            wire, Processor.GPU, efficiency=self.config.managed_remote_eff()
        )
        out.remote_bytes += wire

    def _managed_cpu(self, alloc, pages, rec, out, write) -> None:
        cfg = self.config
        counts = alloc.counts(pages)

        n_unmapped = counts[Location.UNMAPPED]
        if n_unmapped:
            unmapped = alloc.subset(pages, Location.UNMAPPED)
            alloc.set_location(unmapped, Location.CPU)
            self.cpu.reserve(len(unmapped) * cfg.system_page_size)
            out.fault_seconds += len(unmapped) * cfg.cpu_fault_cost
            self._bump(cpu_page_faults=len(unmapped))

        n_gpu = counts[Location.GPU]
        if n_gpu:
            gpu_pages = alloc.subset(pages, Location.GPU)
            victim = alloc.subset(
                alloc.expand_blocks(gpu_pages, alloc.block_pages), Location.GPU
            )
            nbytes = len(victim) * cfg.system_page_size
            alloc.set_location(victim, Location.CPU)
            self.gpu.release(nbytes)
            self.cpu.reserve(nbytes)
            out.transfer_seconds += self.link.streaming_time(
                nbytes, Processor.GPU, Processor.CPU
            )
            out.fault_seconds += len(
                alloc.blocks_of(victim)
            ) * cfg.managed_farfault_cost + (
                cfg.tlb_shootdown_cost + len(victim) * 1e-9
            )
            self._bump(
                migration_d2h_bytes=nbytes,
                pages_migrated_d2h=len(victim),
                tlb_shootdowns=1,
            )

        cpu_like = counts[Location.CPU] + counts[Location.CPU_PINNED]
        local_bytes = rec.useful_bytes * (cpu_like + n_unmapped + n_gpu)
        out.lpddr_bytes += local_bytes
        self._bump(
            lpddr_write_bytes=local_bytes if write else 0,
            lpddr_read_bytes=0 if write else local_bytes,
        )

    # -- epoch servicing (access-counter migration) ----------------------

    def begin_epoch(self) -> None:
        cfg = self.config
        if not cfg.migration_enable:
            return
        budget_pages = cfg.migration_epoch_budget_bytes // cfg.system_page_size
        region = max(1, cfg.gpu_page_size // cfg.system_page_size)
        for alloc in self.allocs.values():
            if budget_pages <= 0:
                break
            if alloc.kind != "system":
                continue
            cpu_pages = [
                p for p in range(alloc.n_pages) if alloc.loc[p] is Location.CPU
            ]
            if not cpu_pages:
                continue
            hot = [
                p
                for p in cpu_pages
                if alloc.counter[p] >= cfg.migration_threshold
            ]
            if not hot:
                continue
            self._bump(migration_notifications=1)
            hot_regions = alloc.expand_blocks(hot, region)
            candidates = alloc.subset(hot_regions, Location.CPU)
            take = candidates[:budget_pages]
            budget_pages -= self._migrate_to_gpu(alloc, take, region)

    def _migrate_to_gpu(self, alloc, pages: list[int], region: int) -> int:
        cfg = self.config
        page_size = cfg.system_page_size
        pages = pages[: self.gpu.free // page_size]
        if not pages:
            return 0
        nbytes = len(pages) * page_size
        alloc.set_location(pages, Location.GPU)
        for p in alloc.expand_blocks(pages, region):
            alloc.counter[p] = 0
        self.cpu.release(nbytes)
        self.gpu.reserve(nbytes)
        # The transfer/stall seconds land in a MigrationReport the trace
        # replay discards, so the reference computes only the link-ledger
        # side effect of migration_time (the time value is dropped).
        self.link.migration_time(nbytes, Processor.CPU, Processor.GPU)
        self._bump(
            migration_h2d_bytes=nbytes,
            pages_migrated_h2d=len(pages),
            tlb_shootdowns=1,
        )
        return len(pages)


class UpmReferenceSystem(ReferenceSystem):
    """Naive per-page reference for the ``upm`` backend.

    Mirrors :class:`repro.mem.arch_upm.UpmArchitecture` the obvious way:
    one pool of ``cpu + gpu`` bytes backs everything, first touch by
    either engine lands in it at the uniform
    :attr:`~repro.sim.config.SystemConfig.upm_fault_cost` (plus page
    zeroing), nothing ever migrates or evicts, GPU-issued local traffic
    counts as ``hbm_*`` and CPU-issued as ``lpddr_*``, and pinned host
    memory is GPU-accessible zero-copy with no C2C hop. The same
    batch-level cost expressions in the same operation order keep time
    equality exact.
    """

    def __init__(self, config: SystemConfig | None = None):
        super().__init__(config)
        pool = _RefPool(
            "UnifiedHBM",
            self.config.cpu_memory_bytes + self.config.gpu_memory_bytes,
        )
        pool.reserve(self.config.gpu_driver_baseline_bytes)
        # One pool behind both endpoints: the inherited ``_allocate``
        # (device -> gpu, pinned/numa -> cpu) reserves into it either way.
        self.cpu = pool
        self.gpu = pool

    # -- uniform fault economics -----------------------------------------

    def _first_touch(self, alloc, unmapped: list[int], proc) -> float:
        cfg = self.config
        page_size = cfg.system_page_size
        if len(unmapped) > self.gpu.free // page_size:
            raise RuntimeError(
                f"reference {self.gpu.name}: unified pool exhausted"
            )
        alloc.set_location(unmapped, Location.GPU)
        self.gpu.reserve(len(unmapped) * page_size)
        n = len(unmapped)
        if proc is Processor.GPU:
            self._bump(gpu_replayable_faults=n)
        else:
            self._bump(cpu_page_faults=n)
        seconds = 0.0
        seconds += n * cfg.upm_fault_cost
        seconds += (n * page_size) / cfg.fault_zeroing_bandwidth
        return seconds

    def _local_bytes(self, alloc, pages, rec, out, proc, write) -> None:
        counts = alloc.counts(pages)
        n_local = (
            counts[Location.GPU]
            + counts[Location.CPU]
            + counts[Location.CPU_PINNED]
        )
        local_bytes = rec.useful_bytes * n_local
        if proc is Processor.GPU:
            out.hbm_bytes += local_bytes
            self._bump(
                **{
                    (
                        "hbm_write_bytes" if write else "hbm_read_bytes"
                    ): local_bytes
                }
            )
        else:
            out.lpddr_bytes += local_bytes
            self._bump(
                **{
                    (
                        "lpddr_write_bytes" if write else "lpddr_read_bytes"
                    ): local_bytes
                }
            )

    # -- access paths ----------------------------------------------------

    def _system(self, proc, alloc, pages, rec, out, write) -> None:
        unmapped = alloc.subset(pages, Location.UNMAPPED)
        if unmapped:
            out.fault_seconds += self._first_touch(alloc, unmapped, proc)
        self._local_bytes(alloc, pages, rec, out, proc, write)

    def _managed_gpu(self, alloc, pages, rec, out, write) -> None:
        alloc.touch_blocks(pages, self.time)
        unmapped = alloc.subset(pages, Location.UNMAPPED)
        if unmapped:
            out.fault_seconds += self._first_touch(
                alloc, unmapped, Processor.GPU
            )
        self._local_bytes(alloc, pages, rec, out, Processor.GPU, write)

    def _managed_cpu(self, alloc, pages, rec, out, write) -> None:
        unmapped = alloc.subset(pages, Location.UNMAPPED)
        if unmapped:
            out.fault_seconds += self._first_touch(
                alloc, unmapped, Processor.CPU
            )
        self._local_bytes(alloc, pages, rec, out, Processor.CPU, write)

    def _pinned(self, proc, alloc, pages, rec, out, write) -> None:
        useful = rec.useful_bytes * len(pages)
        if proc is Processor.CPU:
            out.lpddr_bytes = useful
            self._bump(
                **{
                    (
                        "lpddr_write_bytes" if write else "lpddr_read_bytes"
                    ): useful
                }
            )
        else:
            # Zero-copy from the unified pool at the GPU roofline.
            out.hbm_bytes = useful
            self._bump(
                **{("hbm_write_bytes" if write else "hbm_read_bytes"): useful}
            )

    # -- epochs ----------------------------------------------------------

    def begin_epoch(self) -> None:
        # No migrator: epoch boundaries move nothing and cost nothing.
        return


class SvmReferenceSystem(ReferenceSystem):
    """Naive per-page reference for the ``svm`` backend.

    Mirrors :class:`repro.mem.arch_svm.SvmArchitecture` the obvious way:
    split host/device pools, first touch always host-side at
    :attr:`~repro.sim.config.SystemConfig.svm_fault_cost` (GPU) or the
    OS anonymous-fault cost (CPU) plus zeroing, every touch of a page
    resident on the other side a fault plus an eager page-granularity
    transfer over the :meth:`~repro.sim.config.SystemConfig
    .svm_transfer_time` link, device-pool eviction in registration
    order, and overflow batches streaming in and straight back out. No
    cacheline-grain remote path exists, so ``c2c_*``/``cpu_remote_*``
    stay zero except for pinned-memory DMA. The same batch-level cost
    expressions in the same operation order keep time equality exact.
    """

    # -- fault economics -------------------------------------------------

    def _first_touch(self, alloc, unmapped: list[int], proc) -> float:
        cfg = self.config
        page_size = cfg.system_page_size
        alloc.set_location(unmapped, Location.CPU)
        self.cpu.reserve(len(unmapped) * page_size)
        n = len(unmapped)
        seconds = 0.0
        if proc is Processor.GPU:
            self._bump(gpu_replayable_faults=n)
            seconds += n * cfg.svm_fault_cost
        else:
            cost = n * cfg.cpu_fault_cost
            if cfg.autonuma_enable:
                cost += n * cfg.autonuma_hint_fault_cost
            seconds += cost
            self._bump(cpu_page_faults=n)
        seconds += (n * page_size) / cfg.fault_zeroing_bandwidth
        return seconds

    # -- eviction --------------------------------------------------------

    def _svm_evict(self, needed: int, protect_name: str, protect) -> float:
        cfg = self.config
        if needed <= self.gpu.free:
            return 0.0
        page_size = cfg.system_page_size
        target = needed - self.gpu.free
        protect_set = set(protect)
        seconds = 0.0
        for victim in list(self.allocs.values()):
            if target <= 0:
                break
            if victim.kind not in ("system", "managed"):
                continue
            cand = [
                p
                for p in range(victim.n_pages)
                if victim.loc[p] is Location.GPU
            ]
            if victim.name == protect_name:
                cand = [p for p in cand if p not in protect_set]
            take = cand[: -(-target // page_size)]
            if not take:
                continue
            nbytes = len(take) * page_size
            victim.set_location(take, Location.CPU)
            self.gpu.release(nbytes)
            self.cpu.reserve(nbytes)
            t = cfg.svm_transfer_time(nbytes) / cfg.eviction_bandwidth_fraction
            self.link._account(nbytes, Processor.GPU, "dma")
            seconds += t
            seconds += cfg.tlb_shootdown_cost + len(take) * 1e-9
            self._bump(
                eviction_bytes=nbytes,
                migration_d2h_bytes=nbytes,
                pages_evicted=len(take),
                pages_migrated_d2h=len(take),
                tlb_shootdowns=1,
            )
            target -= nbytes
        return seconds

    # -- shared access paths ---------------------------------------------

    def _svm_gpu(self, alloc, pages, rec, out, write) -> None:
        cfg = self.config
        page_size = cfg.system_page_size
        counts = alloc.counts(pages)  # snapshot before fault servicing
        unmapped = alloc.subset(pages, Location.UNMAPPED)
        if unmapped:
            out.fault_seconds += self._first_touch(
                alloc, unmapped, Processor.GPU
            )
        n_stale = counts[Location.CPU] + counts[Location.CPU_PINNED]
        if n_stale:
            self._bump(gpu_replayable_faults=n_stale)
            out.fault_seconds += n_stale * cfg.svm_fault_cost

        move = alloc.subset(pages, Location.CPU)
        if move:
            out.fault_seconds += self._svm_evict(
                len(move) * page_size, alloc.name, pages
            )
            fit = move[: self.gpu.free // page_size]
            rest = move[len(fit):]
            if fit:
                nbytes = len(fit) * page_size
                alloc.set_location(fit, Location.GPU)
                self.cpu.release(nbytes)
                self.gpu.reserve(nbytes)
                t = cfg.svm_transfer_time(nbytes)
                self.link._account(nbytes, Processor.CPU, "migration")
                out.transfer_seconds += t
                self._bump(
                    migration_h2d_bytes=nbytes,
                    pages_migrated_h2d=len(fit),
                )
            if rest:
                nbytes = len(rest) * page_size
                t_in = cfg.svm_transfer_time(nbytes)
                t_out = (
                    cfg.svm_transfer_time(nbytes)
                    / cfg.eviction_bandwidth_fraction
                )
                self.link._account(nbytes, Processor.CPU, "migration")
                self.link._account(nbytes, Processor.GPU, "dma")
                out.transfer_seconds += t_in + t_out
                self._bump(
                    migration_h2d_bytes=nbytes,
                    migration_d2h_bytes=nbytes,
                    eviction_bytes=nbytes,
                    pages_migrated_h2d=len(rest),
                    pages_migrated_d2h=len(rest),
                    pages_evicted=len(rest),
                )

        local_bytes = rec.useful_bytes * len(pages)
        out.hbm_bytes += local_bytes
        self._bump(
            **{("hbm_write_bytes" if write else "hbm_read_bytes"): local_bytes}
        )

    def _svm_cpu(self, alloc, pages, rec, out, write) -> None:
        cfg = self.config
        page_size = cfg.system_page_size
        unmapped = alloc.subset(pages, Location.UNMAPPED)
        if unmapped:
            out.fault_seconds += self._first_touch(
                alloc, unmapped, Processor.CPU
            )

        gpu_set = alloc.subset(pages, Location.GPU)
        if gpu_set:
            n = len(gpu_set)
            self._bump(cpu_page_faults=n)
            out.fault_seconds += n * cfg.svm_fault_cost
            nbytes = n * page_size
            alloc.set_location(gpu_set, Location.CPU)
            self.gpu.release(nbytes)
            self.cpu.reserve(nbytes)
            t = cfg.svm_transfer_time(nbytes)
            self.link._account(nbytes, Processor.GPU, "dma")
            out.transfer_seconds += t
            out.fault_seconds += cfg.tlb_shootdown_cost + n * 1e-9
            self._bump(
                migration_d2h_bytes=nbytes,
                pages_migrated_d2h=n,
                tlb_shootdowns=1,
            )

        local_bytes = rec.useful_bytes * len(pages)
        out.lpddr_bytes += local_bytes
        self._bump(
            **{
                (
                    "lpddr_write_bytes" if write else "lpddr_read_bytes"
                ): local_bytes
            }
        )

    # -- per-kind dispatch -----------------------------------------------

    def _system(self, proc, alloc, pages, rec, out, write) -> None:
        if proc is Processor.GPU:
            self._svm_gpu(alloc, pages, rec, out, write)
        else:
            self._svm_cpu(alloc, pages, rec, out, write)

    def _managed_gpu(self, alloc, pages, rec, out, write) -> None:
        alloc.touch_blocks(pages, self.time)
        self._svm_gpu(alloc, pages, rec, out, write)

    def _managed_cpu(self, alloc, pages, rec, out, write) -> None:
        self._svm_cpu(alloc, pages, rec, out, write)

    def _pinned(self, proc, alloc, pages, rec, out, write) -> None:
        useful = rec.useful_bytes * len(pages)
        if proc is Processor.CPU:
            out.lpddr_bytes = useful
            self._bump(
                **{
                    (
                        "lpddr_write_bytes" if write else "lpddr_read_bytes"
                    ): useful
                }
            )
        else:
            # Page-granularity DMA over the link, not a coherent load.
            wire = self._per_page_wire(proc, rec) * len(pages)
            t = self.config.svm_transfer_time(wire)
            self.link._account(wire, Processor.CPU, "remote")
            out.remote_bytes = wire
            out.remote_seconds = t
            self._bump(
                **{("c2c_write_bytes" if write else "c2c_read_bytes"): wire}
            )

    # -- epochs ----------------------------------------------------------

    def begin_epoch(self) -> None:
        # Migration is eager and on-fault; epochs move nothing.
        return


#: ``SystemConfig.mem_arch`` -> naive reference executor for that backend.
REFERENCE_SYSTEMS: dict[str, type] = {
    "gh200": ReferenceSystem,
    "upm": UpmReferenceSystem,
    "svm": SvmReferenceSystem,
}


def reference_system_for(config: SystemConfig) -> "ReferenceSystem":
    """A fresh reference executor matching ``config.mem_arch``."""
    try:
        cls = REFERENCE_SYSTEMS[config.mem_arch]
    except KeyError:
        raise ValueError(
            f"no reference executor for memory architecture "
            f"{config.mem_arch!r}; known: {sorted(REFERENCE_SYSTEMS)}"
        ) from None
    return cls(config)


@dataclass
class DifferentialReport:
    """Outcome of one production-vs-reference trace replay."""

    batches: int
    production: dict = field(default_factory=dict)
    reference: dict = field(default_factory=dict)
    #: metric name -> (production value, reference value); empty == pass.
    divergent: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergent

    def summary(self) -> str:
        if self.ok:
            return (
                f"conformance OK: {self.batches} batches, "
                f"{len(self.production['counters'])} counters identical, "
                f"time identical ({self.production['replay_seconds']:.6g}s)"
            )
        lines = [f"conformance FAILED on {len(self.divergent)} metric(s):"]
        for name, (prod, ref) in sorted(self.divergent.items()):
            lines.append(f"  {name}: production={prod!r} reference={ref!r}")
        return "\n".join(lines)


def differential_replay(
    trace,
    config: SystemConfig | None = None,
    *,
    epoch_every: int = 1,
) -> DifferentialReport:
    """Replay ``trace`` through both executors and diff the outcomes.

    The production side goes through
    :func:`repro.profiling.trace.replay` on a fresh
    :class:`~repro.core.runtime.GraceHopperSystem`; the reference side
    through :class:`ReferenceSystem`. Equality is exact — integers for
    counters and link traffic, identical-expression floats for time.
    """
    from ..core.runtime import GraceHopperSystem
    from ..profiling.trace import replay as production_replay

    config = config or SystemConfig()
    gh = GraceHopperSystem(config)
    production_replay(trace, gh, epoch_every=epoch_every)
    stats = gh.mem.link.stats
    production = {
        "replay_seconds": gh.now,
        "counters": gh.counters.total.as_dict(),
        "link": {
            "h2d_bytes": stats.h2d_bytes,
            "d2h_bytes": stats.d2h_bytes,
            **{
                f"class_{cls}": stats.class_bytes(cls)
                for cls in sorted(
                    set(stats.h2d_by_class) | set(stats.d2h_by_class)
                )
            },
        },
    }

    reference = reference_system_for(config.copy()).run(
        trace, epoch_every=epoch_every
    )

    divergent: dict[str, tuple] = {}
    for name in set(production["counters"]) | set(reference["counters"]):
        prod = production["counters"].get(name, 0)
        ref = reference["counters"].get(name, 0)
        if prod != ref:
            divergent[f"counter:{name}"] = (prod, ref)
    for name in set(production["link"]) | set(reference["link"]):
        prod = production["link"].get(name, 0)
        ref = reference["link"].get(name, 0)
        if prod != ref:
            divergent[f"link:{name}"] = (prod, ref)
    if production["replay_seconds"] != reference["replay_seconds"]:
        divergent["replay_seconds"] = (
            production["replay_seconds"],
            reference["replay_seconds"],
        )
    return DifferentialReport(
        batches=len(trace),
        production=production,
        reference=reference,
        divergent=divergent,
    )
