"""Golden-trace regression gate for the experiment registry.

Every registered experiment, run at one fixed small configuration
(:data:`GOLDEN_SCALE`), produces a canonical **fingerprint**: the full
result payload (rows, columns, title, notes) with floats canonicalised
to 12-significant-digit strings, hashed with SHA-256. Fingerprints are
committed under ``tests/golden/`` and checked by ``repro-bench verify``
(and CI), so any change to the model's *numbers* — intended or not —
is visible in review as a golden-file diff rather than sliding through
silently. Intentional model changes regenerate the files with
``repro-bench verify --update-golden`` (or ``benchmarks/update_golden.py``).

Float canonicalisation uses ``repr``-stable ``%.12g`` formatting: well
below double precision noise amplification thresholds for these closed-
form models (the simulator is deterministic — no RNG, no wall clock),
yet forgiving of non-semantic float-formatting churn.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

#: The fixed small configuration every golden fingerprint is computed at.
#: 1/64 of the paper's testbed keeps full-registry verification fast
#: while preserving every oversubscription and page-count ratio
#: (``SystemConfig.scaled`` shrinks workloads and capacities together).
GOLDEN_SCALE = 1.0 / 64.0

#: Bumped when the fingerprint payload format (not the model) changes.
GOLDEN_FORMAT = 1

#: Default on-disk location, resolved relative to the repository layout
#: (``src/repro/check/golden.py`` -> ``tests/golden``).
DEFAULT_GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"


def golden_kwargs(exp_id: str, mem_arch: str = "gh200") -> dict:
    """The pinned kwargs an experiment is fingerprinted at.

    The default backend is omitted from the kwargs so the GH200 golden
    files recorded before backends existed stay byte-identical; each
    non-default backend gets its own golden set under
    ``tests/golden/<backend>/``.
    """
    kwargs: dict = {"scale": GOLDEN_SCALE}
    if exp_id == "topo_scaling":
        kwargs["superchips"] = (1, 2, 4)
    if mem_arch != "gh200":
        kwargs["mem_arch"] = mem_arch
    return kwargs


def golden_dir_for(mem_arch: str, golden_dir=None) -> Path:
    """The golden-file directory for one backend (the repository default
    unless overridden)."""
    base = Path(golden_dir or DEFAULT_GOLDEN_DIR)
    return base if mem_arch == "gh200" else base / mem_arch


def _canonical(value):
    """JSON-stable canonical form: floats as 12-significant-digit
    strings (handles inf/nan portably), tuples as lists, dict keys
    stringified."""
    if isinstance(value, float):
        return f"{value:.12g}"
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def result_fingerprint(result, mem_arch: str = "gh200") -> dict:
    """Canonical payload + digest of one :class:`ExperimentResult`."""
    payload = {
        "exp_id": result.exp_id,
        "title": result.title,
        "columns": _canonical(result.column_names()),
        "rows": _canonical(result.rows),
        "notes": _canonical(list(result.notes)),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()
    return {
        "format": GOLDEN_FORMAT,
        "digest": digest,
        "kwargs": _canonical(golden_kwargs(result.exp_id, mem_arch)),
        **payload,
    }


def compute_fingerprint(exp_id: str, mem_arch: str = "gh200") -> dict:
    """Run ``exp_id`` at the golden configuration and fingerprint it."""
    from ..bench.experiments import run_experiment

    kwargs = golden_kwargs(exp_id, mem_arch)
    return result_fingerprint(run_experiment(exp_id, **kwargs), mem_arch)


def _golden_path(exp_id: str, golden_dir) -> Path:
    return Path(golden_dir) / f"{exp_id}.json"


def load_golden(exp_id: str, golden_dir=None) -> dict | None:
    path = _golden_path(exp_id, golden_dir or DEFAULT_GOLDEN_DIR)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def write_golden(fingerprint: dict, golden_dir=None) -> Path:
    golden_dir = Path(golden_dir or DEFAULT_GOLDEN_DIR)
    golden_dir.mkdir(parents=True, exist_ok=True)
    path = _golden_path(fingerprint["exp_id"], golden_dir)
    path.write_text(json.dumps(fingerprint, indent=2, sort_keys=True) + "\n")
    return path


def _first_divergence(expected: dict, actual: dict) -> str:
    """Human-oriented hint: the first field/row where payloads differ."""
    for key in ("title", "columns", "notes"):
        if expected.get(key) != actual.get(key):
            return f"field {key!r} differs"
    exp_rows = expected.get("rows", [])
    act_rows = actual.get("rows", [])
    if len(exp_rows) != len(act_rows):
        return f"row count {len(exp_rows)} -> {len(act_rows)}"
    for i, (e, a) in enumerate(zip(exp_rows, act_rows)):
        if e != a:
            cols = sorted(
                set(e) | set(a),
                key=lambda c: (e.get(c) == a.get(c), c),
            )
            col = cols[0] if cols else "?"
            return (
                f"row {i} column {col!r}: "
                f"{e.get(col)!r} -> {a.get(col)!r}"
            )
    return "payloads equal but digests differ (format change?)"


def verify_experiments(
    exp_ids=None, *, golden_dir=None, update: bool = False,
    mem_arch: str = "gh200",
) -> list[dict]:
    """Check (or regenerate) golden fingerprints for ``exp_ids``.

    Returns one report dict per experiment with ``status`` in
    ``{"ok", "mismatch", "missing", "updated"}``; ``mismatch`` and
    ``missing`` entries carry a ``detail`` string. Non-default backends
    verify against their own golden set (``tests/golden/<backend>/``).
    """
    from ..bench.experiments import experiment_ids

    exp_ids = list(exp_ids) if exp_ids else experiment_ids()
    golden_dir = golden_dir_for(mem_arch, golden_dir)
    reports = []
    for exp_id in exp_ids:
        actual = compute_fingerprint(exp_id, mem_arch)
        expected = load_golden(exp_id, golden_dir)
        report = {"exp_id": exp_id, "digest": actual["digest"]}
        if update:
            path = write_golden(actual, golden_dir)
            report.update(status="updated", path=str(path))
        elif expected is None:
            report.update(
                status="missing",
                detail=f"no golden file {_golden_path(exp_id, golden_dir)}; "
                "run with --update-golden to record one",
            )
        elif expected["digest"] == actual["digest"]:
            report.update(status="ok")
        else:
            report.update(
                status="mismatch",
                expected=expected["digest"],
                detail=_first_divergence(expected, actual),
            )
        reports.append(report)
    return reports


def main_verify(argv=None) -> int:
    """``repro-bench verify`` — golden-fingerprint regression gate."""
    import argparse
    import os

    from ..bench.experiments import experiment_ids

    parser = argparse.ArgumentParser(
        prog="repro-bench verify",
        description=(
            "Re-run registered experiments at the pinned golden "
            f"configuration (scale={GOLDEN_SCALE:g}) and compare result "
            "fingerprints against tests/golden/."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXP",
        help="experiment ids to verify (default: the whole registry)",
    )
    parser.add_argument(
        "--update-golden",
        action="store_true",
        help="rewrite golden files from the current model (intentional "
        "model changes)",
    )
    parser.add_argument(
        "--golden-dir",
        default=None,
        help=f"golden-file directory (default: {DEFAULT_GOLDEN_DIR})",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run with the memory-model invariant sanitizer enabled "
        "(REPRO_SANITIZE=1)",
    )
    from ..mem.arch import architecture_names

    parser.add_argument(
        "--mem-arch",
        default="gh200",
        choices=architecture_names(),
        help="memory-architecture backend to verify; non-default "
        "backends use tests/golden/<backend>/ (default: gh200)",
    )
    args = parser.parse_args(argv)

    known = experiment_ids()
    for exp_id in args.experiments:
        if exp_id not in known:
            parser.error(f"unknown experiment {exp_id!r}; known: {known}")
    if args.sanitize:
        os.environ["REPRO_SANITIZE"] = "1"

    reports = verify_experiments(
        args.experiments or None,
        golden_dir=args.golden_dir,
        update=args.update_golden,
        mem_arch=args.mem_arch,
    )
    width = max(len(r["exp_id"]) for r in reports)
    failed = 0
    for r in reports:
        line = f"verify {r['exp_id']:<{width}}  {r['status']}"
        if r["status"] in ("ok", "updated"):
            line += f"  ({r['digest'][:12]})"
        else:
            failed += 1
            line += f"\n    {r['detail']}"
            if "expected" in r:
                line += (
                    f"\n    expected {r['expected'][:12]} "
                    f"got {r['digest'][:12]}"
                )
        print(line)
    total = len(reports)
    if failed:
        print(f"{failed}/{total} experiment(s) diverged from golden")
        return 1
    verb = "updated" if args.update_golden else "verified"
    print(f"{verb} {total}/{total} experiment fingerprints")
    return 0
