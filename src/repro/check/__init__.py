"""Correctness layer over the simulated memory subsystem.

Three independent lines of defence, built after three PRs of aggressive
vectorisation (symbolic interval-list PageSets, batched counters, the
multi-superchip fabric) left the fast paths without an oracle:

* :mod:`repro.check.sanitizer` — an opt-in, epoch-hooked invariant
  checker (:class:`MemSanitizer`) asserting residency exclusivity, byte
  conservation across the DDR/HBM/peer pools, counter conservation
  against NVLink-C2C traffic, and page-table coherence on every
  allocation/epoch/access/free. Enable with ``SystemConfig.sanitize=True``
  or ``REPRO_SANITIZE=1``.
* :mod:`repro.check.reference` — a deliberately naive per-page reference
  executor plus a differential replay harness
  (:func:`differential_replay`) that runs recorded access traces through
  both the production batched path and the naive model and demands
  identical counters and times.
* :mod:`repro.check.golden` — canonical result fingerprints per
  registered experiment at a fixed small scale, committed under
  ``tests/golden/`` and checked by ``repro-bench verify``.
"""

from .golden import (
    GOLDEN_SCALE,
    compute_fingerprint,
    golden_kwargs,
    load_golden,
    result_fingerprint,
    verify_experiments,
    write_golden,
)
from .reference import (
    DifferentialReport,
    ReferenceSystem,
    SvmReferenceSystem,
    UpmReferenceSystem,
    differential_replay,
    reference_system_for,
)
from .sanitizer import InvariantViolation, MemSanitizer, sanitize_requested

__all__ = [
    "DifferentialReport",
    "GOLDEN_SCALE",
    "InvariantViolation",
    "MemSanitizer",
    "ReferenceSystem",
    "SvmReferenceSystem",
    "UpmReferenceSystem",
    "compute_fingerprint",
    "differential_replay",
    "golden_kwargs",
    "load_golden",
    "reference_system_for",
    "result_fingerprint",
    "sanitize_requested",
    "verify_experiments",
    "write_golden",
]
