"""The Hopper GPU device model.

Kernels in this simulator are bandwidth/latency driven: a launch presents
its operand traffic (split by supplying tier by the memory subsystem) and
a floating-point workload, and the device computes the kernel duration as
the maximum of the compute-limited and transfer-limited times, plus
serialised fault-handling overhead. This is the level of abstraction at
which the paper reasons about its kernels ("a series of matrix
multiplications that benefit from a high memory throughput").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.config import SystemConfig
from .cache import GpuCacheModel


@dataclass
class GpuStats:
    kernels_launched: int = 0
    busy_seconds: float = 0.0
    flops_executed: float = 0.0


class GpuDevice:
    """Kernel-duration and cache-traffic model of the H100 GPU."""
    def __init__(self, config: SystemConfig, chip: int = 0):
        self.config = config
        self.chip = chip  # superchip index on multi-superchip nodes
        self.cache = GpuCacheModel(config)
        self.stats = GpuStats()
        self.context_initialized = False

    def context_init_time(self) -> float:
        """One-time CUDA context creation (Section 4: in the system-memory
        version this lands inside the first kernel launch)."""
        if self.context_initialized:
            return 0.0
        self.context_initialized = True
        return self.config.context_init_cost

    def kernel_time(
        self,
        *,
        flops: float = 0.0,
        hbm_bytes: int = 0,
        remote_bytes_time: float = 0.0,
        fault_time: float = 0.0,
        stall_time: float = 0.0,
        atomics: int = 0,
        l1l2_bytes: int = 0,
    ) -> float:
        """Duration of one kernel launch.

        HBM traffic and compute overlap (``max``); remote C2C access time,
        fault servicing, and migration stalls serialise with them (they
        block the accessing warps).
        """
        compute = flops / self.config.gpu_flops if flops else 0.0
        hbm = hbm_bytes / self.config.hbm_bandwidth
        l1l2_floor = self.cache.l1l2_time_floor(l1l2_bytes)
        pipelined = max(compute, hbm, l1l2_floor)
        atomic = atomics * self.config.gpu_atomic_cost
        t = (
            self.config.kernel_launch_cost
            + pipelined
            + remote_bytes_time
            + fault_time
            + stall_time
            + atomic
        )
        self.stats.kernels_launched += 1
        self.stats.busy_seconds += t
        self.stats.flops_executed += flops
        return t
