"""The Grace CPU device model (72-core Neoverse V2, LPDDR5X).

CPU phases in the studied applications are dominated by initialisation
loops — single-threaded in Rodinia (Section 3.1) — plus fault handling
and, when touching GPU-resident data, remote cacheline accesses over
NVLink-C2C.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.config import SystemConfig


@dataclass
class CpuStats:
    phases: int = 0
    busy_seconds: float = 0.0


class CpuDevice:
    def __init__(self, config: SystemConfig, chip: int = 0):
        self.config = config
        self.chip = chip  # superchip index on multi-superchip nodes
        self.cores = 72
        self.stats = CpuStats()

    def phase_time(
        self,
        *,
        bytes_processed: int = 0,
        threads: int = 1,
        fault_time: float = 0.0,
        remote_time: float = 0.0,
        fixed_time: float = 0.0,
    ) -> float:
        """Duration of a CPU phase over ``bytes_processed`` bytes.

        Rodinia init loops are single-threaded (Section 3.1); parallel
        phases scale bandwidth up to the LPDDR5X limit.
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        bw = min(
            self.config.cpu_single_thread_bandwidth * min(threads, self.cores),
            self.config.cpu_memory_bandwidth,
        )
        t = bytes_processed / bw + fault_time + remote_time + fixed_time
        self.stats.phases += 1
        self.stats.busy_seconds += t
        return t
