"""Device models: Hopper GPU and Grace CPU."""

from .cache import GpuCacheModel
from .cpu import CpuDevice
from .gpu import GpuDevice

__all__ = ["GpuDevice", "CpuDevice", "GpuCacheModel"]
