"""GPU cache-hierarchy traffic model.

The paper uses L1<->L2 traffic as "an indication of the data rate being
fed to the GPU for computation" (Figure 12): when remote C2C traffic
throttles a kernel, L1<->L2 throughput collapses with it; after the
prefetch optimisation most traffic is fed from GPU memory and L1<->L2
throughput recovers. We model the hierarchy as traffic meters — every
byte a kernel consumes crosses L1<->L2 regardless of which tier supplied
it, plus a reuse multiplier for cache-resident working sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.config import SystemConfig


@dataclass
class CacheStats:
    l1l2_bytes: int = 0
    l2_hbm_bytes: int = 0
    l2_c2c_bytes: int = 0


class GpuCacheModel:
    """L1<->L2 traffic meter with a bandwidth ceiling (Figure 12's lens)."""
    def __init__(self, config: SystemConfig):
        self.config = config
        self.stats = CacheStats()

    def feed(
        self,
        consumed_bytes: int,
        *,
        from_hbm: int,
        from_c2c: int,
        reuse: float = 1.0,
    ) -> int:
        """Record a kernel consuming ``consumed_bytes`` of operands.

        ``reuse`` >= 1 inflates L1<->L2 traffic for kernels that re-read
        cached operands (stencils). Returns the L1<->L2 bytes recorded.
        """
        if consumed_bytes < 0:
            raise ValueError("consumed_bytes must be non-negative")
        l1l2 = int(consumed_bytes * max(reuse, 1.0))
        self.stats.l1l2_bytes += l1l2
        self.stats.l2_hbm_bytes += from_hbm
        self.stats.l2_c2c_bytes += from_c2c
        return l1l2

    def l1l2_time_floor(self, l1l2_bytes: int) -> float:
        """Minimum kernel time imposed by the L1<->L2 bandwidth ceiling."""
        return l1l2_bytes / self.config.l1l2_bandwidth
