"""BFS: breadth-first search over a random graph (Rodinia).

A mixed-pattern application (Table 2, 16M nodes): the frontier sweep
reads the CSR row-pointer and edge arrays with data-dependent gathers
(irregular) while the distance/visited arrays are updated densely over
the frontier (regular-ish). The graph is CPU-initialised.

Functional runs build a real random graph and execute a real
frontier-based BFS whose *actual* gathered indices drive the page-touch
descriptors; results are verified against ``networkx`` shortest paths in
tests. Metadata-only runs use the same code with a synthetic frontier
schedule derived from branching statistics.
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import ArrayAccess
from ..core.porting import MemoryMode
from ..core.runtime import GraceHopperSystem
from .base import Application, AppResult, register_application


def build_random_csr(
    n_nodes: int, avg_degree: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """A connected-ish random graph in CSR form (Rodinia-style)."""
    degrees = rng.poisson(avg_degree, size=n_nodes).astype(np.int64)
    degrees = np.maximum(degrees, 1)
    row_ptr = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(degrees, out=row_ptr[1:])
    edges = rng.integers(0, n_nodes, size=int(row_ptr[-1]), dtype=np.int64)
    # A ring backbone keeps the graph connected so BFS reaches every node.
    edges[row_ptr[:-1]] = (np.arange(n_nodes) + 1) % n_nodes
    return row_ptr, edges


def bfs_reference(row_ptr: np.ndarray, edges: np.ndarray, source: int) -> np.ndarray:
    """Level-synchronous reference BFS over the CSR graph."""
    n = len(row_ptr) - 1
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        starts, stops = row_ptr[frontier], row_ptr[frontier + 1]
        neigh = np.concatenate(
            [edges[a:b] for a, b in zip(starts, stops)]
        ) if frontier.size else np.empty(0, dtype=np.int64)
        neigh = np.unique(neigh)
        neigh = neigh[dist[neigh] < 0]
        dist[neigh] = level
        frontier = neigh
    return dist


@register_application
class Bfs(Application):
    """Graph processing problem: breadth-first search."""

    name = "bfs"
    pattern = "mixed"
    paper_input = "16M nodes"

    PAPER_NODES = 16_000_000

    def __init__(self, scale: float = 1.0, avg_degree: int = 6, seed: int = 5):
        super().__init__(scale)
        self.n_nodes = self.count(self.PAPER_NODES, minimum=64)
        self.avg_degree = avg_degree
        self.seed = seed
        self.n_edges = self.n_nodes * avg_degree

    def working_set_bytes(self) -> int:
        return (self.n_nodes + 1) * 8 + self.n_edges * 8 + 2 * self.n_nodes * 4

    def setup(self, gh: GraceHopperSystem, mode: MemoryMode, materialize: bool):
        self.row_ptr = self.buffer(
            gh, mode, "row_ptr", np.int64, (self.n_nodes + 1,),
            materialize=materialize,
        )
        self.edges = self.buffer(
            gh, mode, "edges", np.int64, (self.n_edges + self.n_nodes,),
            materialize=materialize,
        )
        self.dist = self.buffer(
            gh, mode, "dist", np.int32, (self.n_nodes,), materialize=materialize
        )
        self.frontier_mask = self.buffer(
            gh, mode, "frontier", np.uint8, (self.n_nodes,), gpu_only=True,
            materialize=materialize,
        )

    def cpu_init(self, gh: GraceHopperSystem, mode: MemoryMode) -> None:
        self._real = self.row_ptr.cpu_target.materialized

        def fill():
            if self._real:
                rng = np.random.default_rng(self.seed)
                row_ptr, edges = build_random_csr(
                    self.n_nodes, self.avg_degree, rng
                )
                self.row_ptr.cpu_target.np[:] = row_ptr
                self.edges.cpu_target.np[: edges.size] = edges
                self._edge_count = edges.size
                self.dist.cpu_target.np[:] = -1
                self.dist.cpu_target.np[0] = 0

        self.chunked_cpu_init(
            gh,
            [
                self.row_ptr.cpu_target,
                self.edges.cpu_target,
                self.dist.cpu_target,
            ],
            compute=fill,
        )

    def _frontier_schedule(self) -> list[int]:
        """Synthetic per-level frontier sizes for metadata-only runs."""
        sizes, visited, frontier = [], 1, 1
        while visited < self.n_nodes and frontier > 0:
            nxt = int(
                min(
                    frontier * self.avg_degree * (1 - visited / self.n_nodes),
                    self.n_nodes - visited,
                )
            )
            if nxt <= 0:
                break
            sizes.append(nxt)
            visited += nxt
            frontier = nxt
        return sizes

    def compute(self, gh: GraceHopperSystem, mode: MemoryMode, result: AppResult):
        self.row_ptr.h2d()
        self.edges.h2d()
        self.dist.h2d()

        row_arr = self.row_ptr.gpu_target
        edge_arr = self.edges.gpu_target
        dist_arr = self.dist.gpu_target
        mask_arr = self.frontier_mask.gpu_target
        rng = np.random.default_rng(self.seed + 1)

        if self._real:
            row_ptr = row_arr.np
            edges = edge_arr.np
            dist = dist_arr.np
            frontier = np.asarray([0], dtype=np.int64)
            level = 0
            while frontier.size:
                level += 1
                starts, stops = row_ptr[frontier], row_ptr[frontier + 1]
                neigh = (
                    np.concatenate([edges[a:b] for a, b in zip(starts, stops)])
                    if frontier.size
                    else np.empty(0, dtype=np.int64)
                )
                gather_pages = edge_arr.pages_of_indices(
                    np.concatenate([starts, np.maximum(stops - 1, starts)])
                )
                neigh_unique = np.unique(neigh)
                new = neigh_unique[dist[neigh_unique] < 0]
                self._launch_level(
                    gh, result, level, frontier.size, new.size,
                    row_pages=row_arr.pages_of_indices(frontier),
                    edge_pages=gather_pages,
                    dist_pages=dist_arr.pages_of_indices(
                        new if new.size else np.asarray([0])
                    ),
                    row_arr=row_arr, edge_arr=edge_arr,
                    dist_arr=dist_arr, mask_arr=mask_arr,
                )
                dist[new] = level
                frontier = new
            result.correctness["dist"] = dist.copy()
        else:
            for level, fsize in enumerate(self._frontier_schedule(), start=1):
                # Sampling caps keep the page-set construction cheap; the
                # byte accounting uses the true frontier sizes via the
                # fraction arguments of _launch_level.
                nodes = rng.integers(0, self.n_nodes, size=min(fsize, 1 << 20))
                edge_idx = rng.integers(
                    0, self.n_edges, size=min(fsize * self.avg_degree, 1 << 20)
                )
                self._launch_level(
                    gh, result, level, fsize, fsize,
                    row_pages=row_arr.pages_of_indices(nodes),
                    edge_pages=edge_arr.pages_of_indices(edge_idx),
                    dist_pages=dist_arr.pages_of_indices(nodes),
                    row_arr=row_arr, edge_arr=edge_arr,
                    dist_arr=dist_arr, mask_arr=mask_arr,
                )
        self.dist.d2h()

    def _launch_level(
        self, gh, result, level, frontier_size, new_size, *,
        row_pages, edge_pages, dist_pages, row_arr, edge_arr, dist_arr, mask_arr,
    ):
        density = min(1.0, frontier_size / max(self.n_nodes, 1))
        t0 = gh.now
        gh.launch_kernel(
            f"bfs-level-{level}",
            [
                ArrayAccess.read(
                    row_arr, row_pages,
                    fraction=_page_fraction(row_arr, frontier_size, row_pages),
                    density=max(density, 1e-3),
                ),
                ArrayAccess.read(
                    edge_arr, edge_pages,
                    fraction=_page_fraction(
                        edge_arr, frontier_size * self.avg_degree, edge_pages
                    ),
                    density=max(density, 1e-3),
                ),
                ArrayAccess.write_(
                    dist_arr, dist_pages,
                    fraction=_page_fraction(dist_arr, new_size, dist_pages),
                    density=max(density, 1e-3),
                ),
                ArrayAccess.read(mask_arr),
                ArrayAccess.write_(mask_arr),
            ],
            flops=2.0 * frontier_size * self.avg_degree,
            atomics=new_size,
        )
        result.iteration_times.append(gh.now - t0)

    def verify(self, result: AppResult) -> None:
        dist = result.correctness.get("dist")
        if dist is None:
            return
        rng = np.random.default_rng(self.seed)
        row_ptr, edges = build_random_csr(self.n_nodes, self.avg_degree, rng)
        expect = bfs_reference(row_ptr, edges, 0)
        if not np.array_equal(dist, expect):
            raise AssertionError("bfs distances diverge from reference")


def _page_fraction(arr, n_elements: int, pages) -> float:
    """Useful fraction of each touched page for a gather of n_elements."""
    if not pages or n_elements <= 0:
        return arr.itemsize / arr.page_size
    per_page = n_elements * arr.itemsize / (pages.count * arr.page_size)
    return float(min(1.0, max(per_page, arr.itemsize / arr.page_size)))
