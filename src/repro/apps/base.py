"""Application protocol: one algorithm, three memory versions.

Every studied application (Table 2) implements this base class once and
runs under all three memory modes — explicit, system, managed — via the
Figure 2 transformation implemented by
:class:`~repro.core.porting.UnifiedBuffer`. The base class owns the
phase protocol (allocation → CPU init → compute → deallocation) with the
paper's timing conventions, runs the optional memory profiler, and
collects correctness payloads so functional tests can verify every
algorithm against a reference implementation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.phases import Phase, PhaseBreakdown, PhaseTimer
from ..core.porting import MemoryMode, UnifiedBuffer
from ..core.runtime import GraceHopperSystem
from ..profiling.counters import CounterSet
from ..profiling.memprofiler import MemoryProfile, MemoryProfiler
from ..sim.config import SystemConfig


@dataclass
class AppResult:
    """Everything one application run produced."""

    app: str
    mode: MemoryMode
    phases: PhaseBreakdown
    counters: CounterSet
    correctness: dict[str, Any] = field(default_factory=dict)
    profile: MemoryProfile | None = None
    iteration_times: list[float] = field(default_factory=list)
    iteration_traffic: list[dict[str, int]] = field(default_factory=list)
    #: Application-defined sub-phase durations (e.g. the Figure 9/13
    #: GPU-side initialisation vs computation split for Quantum Volume).
    sub_phases: dict[str, float] = field(default_factory=dict)
    peak_gpu_bytes: int = 0

    @property
    def reported_total(self) -> float:
        return self.phases.reported_total


class Application(ABC):
    """Base class for the six studied applications."""

    #: Short name, e.g. ``"hotspot"`` (Table 2).
    name: str = ""
    #: Access pattern class: ``"regular"``, ``"irregular"`` or ``"mixed"``.
    pattern: str = ""
    #: The paper's input size, for the Table 2 reproduction.
    paper_input: str = ""
    #: ``"paper"`` for the six Table 2 applications; ``"extra"`` for the
    #: additional synthetic workloads this reproduction adds (the paper's
    #: future-work call for diverse access-counter-migration studies).
    category: str = "paper"

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.buffers: dict[str, UnifiedBuffer] = {}

    # -- hooks ------------------------------------------------------------------

    @abstractmethod
    def setup(self, gh: GraceHopperSystem, mode: MemoryMode, materialize: bool):
        """Allocate all buffers (the allocation phase)."""

    @abstractmethod
    def cpu_init(self, gh: GraceHopperSystem, mode: MemoryMode) -> None:
        """CPU-side initialisation (excluded from reported totals)."""

    @abstractmethod
    def compute(self, gh: GraceHopperSystem, mode: MemoryMode, result: AppResult):
        """The computation phase, including the Figure 2 h2d/d2h points."""

    def teardown(self, gh: GraceHopperSystem) -> None:
        for buf in self.buffers.values():
            buf.free()
        self.buffers.clear()

    def verify(self, result: AppResult) -> None:
        """Optional: raise if the functional output is wrong."""

    # -- footprint helpers ---------------------------------------------------------

    @abstractmethod
    def working_set_bytes(self) -> int:
        """Peak GPU working set, ``M_peak`` for oversubscription ratios."""

    # -- the run protocol ---------------------------------------------------------------

    def run(
        self,
        gh: GraceHopperSystem,
        mode: MemoryMode,
        *,
        materialize: bool = False,
        profile: bool = False,
        verify: bool = False,
        warm_context: bool = True,
    ) -> AppResult:
        """Execute the application under ``mode`` on ``gh``.

        ``warm_context=True`` performs GPU context initialisation in its
        own phase before t0 (the paper's "GPU context initialisation and
        argument parsing" phase), excluded from reported totals. With
        ``warm_context=False`` the Section 4 behaviour is observable: the
        explicit/managed versions create the context in their allocation
        phase, while the system version's context cost slides into the
        first kernel launch of the computation phase.
        """
        timer = PhaseTimer(gh.clock)
        result = AppResult(
            app=self.name,
            mode=mode,
            phases=timer.breakdown,
            counters=CounterSet(),
        )
        profiler = MemoryProfiler(gh.clock, gh.mem) if profile else None
        if profiler:
            profiler.start()
        start_counters = gh.counters.total.snapshot()
        try:
            if warm_context:
                with timer.measure(Phase.CONTEXT):
                    gh._ensure_context()
            with timer.measure(Phase.ALLOCATION):
                self.setup(gh, mode, materialize)
                if profiler:
                    profiler.annotate("allocation-done")
            with timer.measure(Phase.CPU_INIT):
                self.cpu_init(gh, mode)
                if profiler:
                    profiler.annotate("cpu-init-done")
            with timer.measure(Phase.COMPUTE):
                self.compute(gh, mode, result)
                if profiler:
                    profiler.annotate("compute-done")
            with timer.measure(Phase.DEALLOCATION):
                self.teardown(gh)
        finally:
            if profiler:
                profiler.stop()
                result.profile = profiler.profile
                result.peak_gpu_bytes = profiler.profile.peak_gpu_bytes()
        result.counters = gh.counters.total.delta(start_counters)
        if verify:
            self.verify(result)
        return result

    # -- convenience --------------------------------------------------------------------

    def buffer(
        self,
        gh: GraceHopperSystem,
        mode: MemoryMode,
        name: str,
        dtype,
        shape,
        *,
        gpu_only: bool = False,
        materialize: bool = False,
    ) -> UnifiedBuffer:
        buf = UnifiedBuffer(
            gh,
            mode,
            dtype,
            shape,
            name=f"{self.name}.{name}",
            materialize=materialize,
            gpu_only=gpu_only,
        )
        self.buffers[name] = buf
        return buf

    def chunked_cpu_init(
        self,
        gh: GraceHopperSystem,
        arrays,
        *,
        chunks: int = 16,
        compute=None,
        label: str = "init",
    ) -> None:
        """CPU-initialise 2-D/1-D arrays in row chunks.

        Splitting the init loop into chunks interleaves page faulting with
        simulated time, so the 100 ms memory profiler of Section 3.2 sees
        the gradual RSS ramp the paper's Figures 4-5 show, instead of a
        step.

        Each chunk is emitted as one structure-of-arrays
        :class:`~repro.mem.batch.AccessBatch` — the epoch-descriptor form
        the batched executor consumes directly.
        """
        from ..core.kernels import ArrayAccess
        from ..mem.batch import AccessBatch
        from ..mem.pageset import PageSet

        if compute is not None:
            compute()
        for c in range(chunks):
            accesses = []
            for arr in arrays:
                n_pages = arr.alloc.n_pages
                lo = (c * n_pages) // chunks
                hi = ((c + 1) * n_pages) // chunks
                if hi > lo:
                    accesses.append(
                        ArrayAccess.write_(arr, PageSet.range(lo, hi))
                    )
            if accesses:
                gh.cpu_phase(
                    f"{self.name}-{label}-{c}",
                    AccessBatch.from_accesses(accesses),
                )

    def dim(self, paper_value: int, *, minimum: int = 4) -> int:
        """A problem dimension scaled from the paper's value.

        Linear dimensions of 2-D problems scale with sqrt(scale) so that
        the *footprint* scales linearly with ``scale``."""
        return max(minimum, int(round(paper_value * np.sqrt(self.scale))))

    def count(self, paper_value: int, *, minimum: int = 4) -> int:
        """A 1-D count scaled linearly with ``scale``."""
        return max(minimum, int(round(paper_value * self.scale)))


_REGISTRY: dict[str, type[Application]] = {}


def register_application(cls: type[Application]) -> type[Application]:
    if not cls.name:
        raise ValueError("application class must define a name")
    _REGISTRY[cls.name] = cls
    return cls


def application_names(category: str | None = "paper") -> list[str]:
    """Registered application names; ``category=None`` lists everything."""
    return sorted(
        name
        for name, cls in _REGISTRY.items()
        if category is None or cls.category == category
    )


def get_application(name: str, **kwargs) -> Application:
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {application_names()}"
        ) from None
    return cls(**kwargs)


def applications_table() -> list[dict[str, str]]:
    """The rows of the paper's Table 2 (paper applications only)."""
    rows = []
    for name in application_names("paper"):
        cls = _REGISTRY[name]
        rows.append(
            {
                "name": name,
                "description": (cls.__doc__ or "").strip().splitlines()[0],
                "pattern": cls.pattern,
                "input": cls.paper_input,
            }
        )
    return rows
