"""Pauli-string observables and expectation values.

Completes the Qiskit-Aer stand-in's measurement surface: expectation
values of tensor products of Pauli operators (the observables quantum
algorithms actually estimate), computed exactly from the statevector
without materialising any 2^n matrix — each Pauli factor is applied as a
single-qubit gate sweep, matching how Aer evaluates them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .statevector import PAULI_X, PAULI_Z, Statevector

PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex64)
_PAULIS = {"I": None, "X": PAULI_X, "Y": PAULI_Y, "Z": PAULI_Z}


@dataclass(frozen=True)
class PauliString:
    """A tensor product like ``ZZI`` or ``XIY``.

    The label reads left-to-right from the *highest* qubit down, matching
    the usual big-endian circuit notation: ``PauliString("ZI")`` acts
    with Z on qubit 1 and identity on qubit 0.
    """

    label: str
    coefficient: complex = 1.0

    def __post_init__(self):
        if not self.label:
            raise ValueError("empty Pauli label")
        bad = set(self.label) - set(_PAULIS)
        if bad:
            raise ValueError(f"unknown Pauli factors: {sorted(bad)}")

    @property
    def n_qubits(self) -> int:
        return len(self.label)

    def factor(self, qubit: int) -> str:
        """The Pauli acting on ``qubit`` (qubit 0 = least significant)."""
        if not 0 <= qubit < self.n_qubits:
            raise ValueError(f"qubit {qubit} out of range")
        return self.label[self.n_qubits - 1 - qubit]

    def apply(self, state: Statevector) -> Statevector:
        """Return P|psi> as a fresh statevector."""
        if state.n_qubits != self.n_qubits:
            raise ValueError("statevector/observable size mismatch")
        out = Statevector(state.n_qubits, dtype=state.dtype)
        out.amplitudes[:] = state.amplitudes
        for q in range(self.n_qubits):
            gate = _PAULIS[self.factor(q)]
            if gate is not None:
                out.apply_single(gate, q)
        if self.coefficient != 1.0:
            out.amplitudes *= np.asarray(self.coefficient, dtype=out.dtype)
        return out


def expectation(state: Statevector, pauli: PauliString) -> complex:
    """<psi| P |psi>, exact."""
    transformed = pauli.apply(state)
    return complex(
        np.vdot(
            state.amplitudes.astype(np.complex128),
            transformed.amplitudes.astype(np.complex128),
        )
    )


@dataclass
class Hamiltonian:
    """A real-coefficient sum of Pauli strings."""

    terms: list[PauliString]

    def __post_init__(self):
        if not self.terms:
            raise ValueError("Hamiltonian needs at least one term")
        n = self.terms[0].n_qubits
        if any(t.n_qubits != n for t in self.terms):
            raise ValueError("all terms must act on the same register")

    @property
    def n_qubits(self) -> int:
        return self.terms[0].n_qubits

    def expectation(self, state: Statevector) -> float:
        total = sum(expectation(state, t) for t in self.terms)
        return float(total.real)


def ising_hamiltonian(n_qubits: int, j: float = 1.0, h: float = 0.5) -> Hamiltonian:
    """The transverse-field Ising chain: -J sum ZZ - h sum X."""
    if n_qubits < 2:
        raise ValueError("Ising chain needs at least two qubits")
    terms = []
    for q in range(n_qubits - 1):
        label = ["I"] * n_qubits
        label[n_qubits - 1 - q] = "Z"
        label[n_qubits - 1 - (q + 1)] = "Z"
        terms.append(PauliString("".join(label), coefficient=-j))
    for q in range(n_qubits):
        label = ["I"] * n_qubits
        label[n_qubits - 1 - q] = "X"
        terms.append(PauliString("".join(label), coefficient=-h))
    return Hamiltonian(terms)
