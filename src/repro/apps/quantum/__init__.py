"""Quantum Volume statevector simulation (Qiskit-Aer stand-in)."""

from .app import AMPLITUDE_BYTES, QuantumVolume
from .circuits import (
    QuantumVolumeCircuit,
    circuit_as_unitary,
    generate_qv_circuit,
    run_circuit,
)
from .gates import Circuit, ghz_circuit, qft_circuit
from .observables import (
    Hamiltonian,
    PauliString,
    expectation,
    ising_hamiltonian,
)
from .statevector import HADAMARD, PAULI_X, PAULI_Z, Statevector, random_su4

__all__ = [
    "QuantumVolume",
    "AMPLITUDE_BYTES",
    "Statevector",
    "random_su4",
    "PAULI_X",
    "PAULI_Z",
    "HADAMARD",
    "QuantumVolumeCircuit",
    "generate_qv_circuit",
    "run_circuit",
    "circuit_as_unitary",
    "Circuit",
    "ghz_circuit",
    "qft_circuit",
    "PauliString",
    "Hamiltonian",
    "expectation",
    "ising_hamiltonian",
]
