"""Standard gate library and a small circuit builder.

Extends the Quantum Volume core with the common single- and two-qubit
gates (the set Qiskit-Aer's statevector backend executes natively), so
the simulator stand-in can run arbitrary circuits, not just QV — used by
the tests to cross-validate gate identities and by the GHZ/QFT examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .statevector import Statevector

# -- constant gates -----------------------------------------------------------

I2 = np.eye(2, dtype=np.complex64)
X = np.array([[0, 1], [1, 0]], dtype=np.complex64)
Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex64)
Z = np.array([[1, 0], [0, -1]], dtype=np.complex64)
H = np.array([[1, 1], [1, -1]], dtype=np.complex64) / math.sqrt(2)
S = np.array([[1, 0], [0, 1j]], dtype=np.complex64)
SDG = S.conj().T
T = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=np.complex64)
TDG = T.conj().T

CX = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]],
    dtype=np.complex64,
)
CZ = np.diag([1, 1, 1, -1]).astype(np.complex64)
SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]],
    dtype=np.complex64,
)


# -- parameterised gates ---------------------------------------------------------


def rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=np.complex64)


def ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=np.complex64)


def rz(theta: float) -> np.ndarray:
    return np.array(
        [[np.exp(-1j * theta / 2), 0], [0, np.exp(1j * theta / 2)]],
        dtype=np.complex64,
    )


def phase(lam: float) -> np.ndarray:
    return np.array([[1, 0], [0, np.exp(1j * lam)]], dtype=np.complex64)


def u3(theta: float, phi: float, lam: float) -> np.ndarray:
    """The general single-qubit rotation (Qiskit's U gate)."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=np.complex64,
    )


def crz(theta: float) -> np.ndarray:
    """Controlled-RZ, the building block of the QFT."""
    out = np.eye(4, dtype=np.complex64)
    out[2:, 2:] = rz(theta)
    return out


def cphase(lam: float) -> np.ndarray:
    out = np.eye(4, dtype=np.complex64)
    out[3, 3] = np.exp(1j * lam)
    return out


# -- circuit builder -------------------------------------------------------------


@dataclass
class Operation:
    matrix: np.ndarray
    qubits: tuple[int, ...]
    label: str = ""


@dataclass
class Circuit:
    """A minimal gate-list circuit executable on :class:`Statevector`."""

    n_qubits: int
    ops: list[Operation] = field(default_factory=list)

    def _append(self, matrix, qubits, label):
        for q in qubits:
            if not 0 <= q < self.n_qubits:
                raise ValueError(f"qubit {q} out of range")
        self.ops.append(Operation(matrix, tuple(qubits), label))
        return self

    # single-qubit
    def x(self, q):
        return self._append(X, (q,), "x")

    def y(self, q):
        return self._append(Y, (q,), "y")

    def z(self, q):
        return self._append(Z, (q,), "z")

    def h(self, q):
        return self._append(H, (q,), "h")

    def s(self, q):
        return self._append(S, (q,), "s")

    def t(self, q):
        return self._append(T, (q,), "t")

    def rx(self, theta, q):
        return self._append(rx(theta), (q,), f"rx({theta:.3f})")

    def ry(self, theta, q):
        return self._append(ry(theta), (q,), f"ry({theta:.3f})")

    def rz(self, theta, q):
        return self._append(rz(theta), (q,), f"rz({theta:.3f})")

    def u3(self, theta, phi, lam, q):
        return self._append(u3(theta, phi, lam), (q,), "u3")

    # two-qubit
    def cx(self, control, target):
        return self._append(CX, (control, target), "cx")

    def cz(self, q0, q1):
        return self._append(CZ, (q0, q1), "cz")

    def swap(self, q0, q1):
        return self._append(SWAP, (q0, q1), "swap")

    def cphase(self, lam, control, target):
        return self._append(cphase(lam), (control, target), "cphase")

    @property
    def depth_ops(self) -> int:
        return len(self.ops)

    def run(self, state: Statevector | None = None) -> Statevector:
        state = state or Statevector(self.n_qubits)
        if state.n_qubits != self.n_qubits:
            raise ValueError("statevector size mismatch")
        for op in self.ops:
            if len(op.qubits) == 1:
                state.apply_single(op.matrix, op.qubits[0])
            elif len(op.qubits) == 2:
                state.apply_two(op.matrix, op.qubits[0], op.qubits[1])
            else:  # pragma: no cover - builder only emits 1-2 qubit ops
                raise ValueError("only 1- and 2-qubit operations supported")
        return state


# -- reference circuits -------------------------------------------------------------


def ghz_circuit(n_qubits: int) -> Circuit:
    """|00..0> + |11..1> (up to normalisation)."""
    c = Circuit(n_qubits)
    c.h(0)
    for q in range(1, n_qubits):
        c.cx(q - 1, q)
    return c


def qft_circuit(n_qubits: int) -> Circuit:
    """The quantum Fourier transform (with final qubit reversal)."""
    c = Circuit(n_qubits)
    for q in reversed(range(n_qubits)):
        c.h(q)
        for k, lower in enumerate(reversed(range(q)), start=1):
            c.cphase(math.pi / (1 << k), lower, q)
    for q in range(n_qubits // 2):
        c.swap(q, n_qubits - 1 - q)
    return c
