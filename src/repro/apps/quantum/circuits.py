"""Quantum Volume circuit generation.

A Quantum Volume circuit on ``n`` qubits has depth ``n``; each layer
draws a random permutation of the qubits and applies a Haar-random SU(4)
gate to each adjacent pair of the permutation — the benchmark the paper
simulates with Qiskit-Aer at 30-34 qubits (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .statevector import Statevector, random_su4


@dataclass(frozen=True)
class TwoQubitGate:
    q0: int
    q1: int
    matrix: np.ndarray


@dataclass
class QuantumVolumeCircuit:
    n_qubits: int
    depth: int
    layers: list[list[TwoQubitGate]] = field(default_factory=list)

    @property
    def n_gates(self) -> int:
        return sum(len(layer) for layer in self.layers)


def generate_qv_circuit(
    n_qubits: int, rng: np.random.Generator, depth: int | None = None
) -> QuantumVolumeCircuit:
    """Generate a Quantum Volume circuit (depth defaults to ``n_qubits``)."""
    if n_qubits < 2:
        raise ValueError("Quantum Volume needs at least two qubits")
    depth = n_qubits if depth is None else depth
    circuit = QuantumVolumeCircuit(n_qubits=n_qubits, depth=depth)
    for _ in range(depth):
        perm = rng.permutation(n_qubits)
        layer = [
            TwoQubitGate(int(perm[2 * i]), int(perm[2 * i + 1]), random_su4(rng))
            for i in range(n_qubits // 2)
        ]
        circuit.layers.append(layer)
    return circuit


def run_circuit(state: Statevector, circuit: QuantumVolumeCircuit) -> None:
    """Apply all circuit layers to ``state`` in order."""
    if state.n_qubits != circuit.n_qubits:
        raise ValueError("statevector/circuit qubit count mismatch")
    for layer in circuit.layers:
        for gate in layer:
            state.apply_two(gate.matrix, gate.q0, gate.q1)


def circuit_as_unitary(circuit: QuantumVolumeCircuit) -> np.ndarray:
    """The full 2^n x 2^n unitary (small n only; used by tests)."""
    n = circuit.n_qubits
    dim = 1 << n
    if n > 12:
        raise ValueError("unitary construction is exponential; use n <= 12")
    u = np.eye(dim, dtype=np.complex128)
    for layer in circuit.layers:
        for gate in layer:
            u = _embed_two_qubit(gate.matrix, gate.q0, gate.q1, n) @ u
    return u


def _embed_two_qubit(gate: np.ndarray, q0: int, q1: int, n: int) -> np.ndarray:
    """Embed a 4x4 gate on (q0, q1) into the full 2^n unitary."""
    dim = 1 << n
    full = np.zeros((dim, dim), dtype=np.complex128)
    g = np.asarray(gate, dtype=np.complex128)
    for col in range(dim):
        b0 = (col >> q0) & 1
        b1 = (col >> q1) & 1
        src = (b0 << 1) | b1
        base = col & ~((1 << q0) | (1 << q1))
        for dst in range(4):
            d0, d1 = (dst >> 1) & 1, dst & 1
            row = base | (d0 << q0) | (d1 << q1)
            full[row, col] += g[dst, src]
    return full
