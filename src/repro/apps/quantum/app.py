"""Quantum Volume simulation application (the Qiskit-Aer port).

Mirrors the paper's Section 3.1 setup:

* the statevector buffer is ``8 * 2**N`` bytes (complex64 amplitudes);
* it is **GPU-initialised** (the simulator zeroes and seeds |0...0> on
  the device), making it the GPU-side-first-touch showcase of
  Section 5.1.2;
* every circuit layer performs fused streaming sweeps over the whole
  statevector — the "series of matrix multiplications that benefit from
  high memory throughput";
* per-layer temporary buffers are drawn from a *custom thrust allocator*
  which is ``cudaMalloc`` in the explicit version, ``malloc`` in the
  system version and ``cudaMallocManaged`` in the managed version;
* host-side circuit preparation touches a fixed auxiliary region during
  the computation phase (Qiskit's host bookkeeping);
* the explicit version implements Aer's chunked pipeline when the
  statevector exceeds GPU memory — the "sophisticated data movement
  pipeline [that] represents the ideal performance" of Section 4.

Functional runs (small qubit counts, ``materialize=True``) execute the
real statevector engine of :mod:`repro.apps.quantum.statevector` and
verify unitarity.
"""

from __future__ import annotations

import numpy as np

from ...core.kernels import ArrayAccess
from ...core.porting import MemoryMode
from ...core.runtime import GraceHopperSystem
from ...mem.pageset import PageSet
from ...sim.config import Location, MiB, Processor
from ..base import Application, AppResult, register_application
from .circuits import generate_qv_circuit, run_circuit
from .statevector import Statevector

#: Paper statevector sizing: 8 bytes per amplitude.
AMPLITUDE_BYTES = 8

#: Fixed host-side bookkeeping (circuit tables, transpilation buffers).
AUX_BYTES = 64 * MiB

#: Fused gate sweeps per circuit layer (Aer's gate fusion collapses the
#: n/2 SU(4) gates of a layer into a couple of full-statevector passes).
SWEEPS_PER_LAYER = 2

#: Chunk size of the explicit version's out-of-core pipeline.
CHUNK_BYTES = 4 * 1024 * MiB


@register_application
class QuantumVolume(Application):
    """Quantum Volume simulation (Qiskit-Aer statevector backend)."""

    name = "qiskit"
    pattern = "mixed"
    paper_input = "30-34 qubits"

    def __init__(self, scale: float = 1.0, qubits: int = 30, seed: int = 17,
                 depth: int | None = None, prefetch: bool = False,
                 chunk_bytes: int | None = None):
        """``prefetch=True`` applies the paper's managed-memory
        optimisation: explicit ``cudaMemPrefetchAsync`` of the statevector
        before each layer, so oversubscribed data is consumed from GPU
        memory instead of the slow remote mapping (Figures 12-13).
        ``chunk_bytes`` sizes the explicit version's out-of-core pipeline
        buffers (defaults to 4 GiB, Aer's chunk scale)."""
        super().__init__(scale)
        if qubits < 2:
            raise ValueError("Quantum Volume needs at least 2 qubits")
        self.qubits = qubits
        self.depth = depth or qubits
        self.seed = seed
        self.prefetch = prefetch
        self.chunk_bytes = chunk_bytes or CHUNK_BYTES
        if self.chunk_bytes < AMPLITUDE_BYTES:
            raise ValueError("chunk_bytes must hold at least one amplitude")
        self.sv_bytes = AMPLITUDE_BYTES << qubits

    def working_set_bytes(self) -> int:
        return self.sv_bytes

    # -- phases ---------------------------------------------------------------

    def setup(self, gh: GraceHopperSystem, mode: MemoryMode, materialize: bool):
        self._chunked = (
            mode is MemoryMode.EXPLICIT
            and self.sv_bytes > gh.mem.physical.gpu.free
        )
        n_amps = 1 << self.qubits
        if mode is MemoryMode.EXPLICIT and not self._chunked:
            # In-memory explicit: the statevector lives on the device.
            self.sv = self.buffer(
                gh, mode, "statevector", np.complex64, (n_amps,),
                gpu_only=True, materialize=materialize,
            )
        elif self._chunked:
            # Aer's heterogeneous mode: statevector in pinned host memory,
            # streamed through a device-resident chunk pair.
            self._host_sv = gh.cuda_malloc_host(
                np.complex64, (n_amps,), name="qiskit.sv.host",
                materialize=materialize,
            )
            chunk_amps = min(n_amps, self.chunk_bytes // AMPLITUDE_BYTES)
            self._chunk_dev = gh.cuda_malloc(
                np.complex64, (chunk_amps,), name="qiskit.sv.chunk"
            )
        else:
            self.sv = self.buffer(
                gh, mode, "statevector", np.complex64, (n_amps,),
                materialize=materialize,
            )
        # Host bookkeeping is plain malloc in every version (Qiskit's own
        # host code does not go through the thrust allocator).
        self.aux = gh.malloc(np.uint8, (AUX_BYTES,), name="qiskit.aux")

    def cpu_init(self, gh: GraceHopperSystem, mode: MemoryMode) -> None:
        # Argument parsing / circuit loading; the statevector itself is
        # GPU-initialised, so there is no CPU-side buffer initialisation.
        gh.cpu_phase("qiskit-parse", [], fixed_time=1e-4)

    # -- the thrust custom allocator -------------------------------------------

    def _thrust_alloc(self, gh: GraceHopperSystem, mode: MemoryMode, layer: int):
        shape = (512 * 1024,)
        name = f"qiskit.thrust{layer}"
        if mode is MemoryMode.SYSTEM:
            return gh.malloc(np.uint8, shape, name=name)
        if mode is MemoryMode.MANAGED:
            return gh.cuda_malloc_managed(np.uint8, shape, name=name)
        return gh.cuda_malloc(np.uint8, shape, name=name)

    # -- compute ------------------------------------------------------------------

    def compute(self, gh: GraceHopperSystem, mode: MemoryMode, result: AppResult):
        rng = np.random.default_rng(self.seed)
        state = None
        circuit = None
        materialized = (
            not self._chunked
            and getattr(self, "sv", None) is not None
            and self.sv.gpu_target.materialized
        )
        if materialized:
            circuit = generate_qv_circuit(self.qubits, rng, depth=self.depth)
            state = Statevector(
                self.qubits, buffer=self.sv.gpu_target.np.reshape(-1)
            )

        # Host-side circuit preparation (in the computation phase: Qiskit
        # transpiles within execute()).
        gh.cpu_phase("qiskit-prep", [ArrayAccess.write_(self.aux)])

        # -- initialisation sub-phase: zero + seed the statevector on GPU.
        # Initialisation proceeds in windows (thrust fills the vector in
        # grid-stride batches), so the memory profiler sees the gradual
        # GPU-usage ramp of Figure 5 instead of a step.
        t_init0 = gh.now
        if self._chunked:
            self._chunked_init(gh)
        else:
            sv_arr = self.sv.gpu_target
            n_pages = sv_arr.alloc.n_pages
            n_windows = min(32, n_pages)

            def init():
                if materialized:
                    state.reset()

            for w in range(n_windows):
                lo = (w * n_pages) // n_windows
                hi = ((w + 1) * n_pages) // n_windows
                gh.launch_kernel(
                    f"qiskit-init-statevector-{w}",
                    [ArrayAccess.write_(sv_arr, PageSet.range(lo, hi))],
                    compute=init if w == 0 else None,
                )
        result.sub_phases["initialization"] = gh.now - t_init0

        # -- computation sub-phase: the circuit layers.
        t_comp0 = gh.now
        for layer in range(self.depth):
            temp = self._thrust_alloc(gh, mode, layer)
            t0 = gh.now
            if self._chunked:
                self._chunked_layer(gh, layer)
            else:
                sv_arr = self.sv.gpu_target

                def apply(layer=layer):
                    if materialized:
                        for gate in circuit.layers[layer]:
                            state.apply_two(gate.matrix, gate.q0, gate.q1)

                if self.prefetch and mode is MemoryMode.MANAGED:
                    gh.prefetch_to_gpu(sv_arr)
                for sweep in range(SWEEPS_PER_LAYER):
                    sv_pages = None
                    if self.prefetch and mode is MemoryMode.MANAGED:
                        # The prefetch pipeline interleaves chunk moves
                        # with compute, so the sweep consumes the
                        # GPU-resident window locally; the transfer cost
                        # of the remainder was paid by the prefetch call.
                        sv_pages = sv_arr.alloc.subset(
                            PageSet.full(sv_arr.alloc.n_pages), Location.GPU
                        )
                    gh.launch_kernel(
                        f"qiskit-layer{layer}-sweep{sweep}",
                        [
                            ArrayAccess.read(sv_arr, sv_pages),
                            ArrayAccess.write_(sv_arr, sv_pages),
                            ArrayAccess.read(temp),
                            ArrayAccess.write_(temp),
                        ],
                        flops=24.0 * (1 << self.qubits),
                        compute=apply if sweep == 0 else None,
                    )
            result.iteration_times.append(gh.now - t0)
            gh.free(temp)
        gh.device_synchronize()
        result.sub_phases["computation"] = gh.now - t_comp0

        if materialized:
            result.correctness["norm"] = state.norm()
            result.correctness["heavy_output_probability"] = (
                state.heavy_output_probability()
            )
            result.correctness["state"] = state.amplitudes.copy()

    # -- chunked pipeline (explicit, out-of-core) -------------------------------------

    def _chunked_init(self, gh: GraceHopperSystem) -> None:
        """Initialise the host statevector chunk by chunk through the GPU."""
        n_chunks = -(-self._host_sv.nbytes // self._chunk_dev.nbytes)
        for c in range(n_chunks):
            gh.launch_kernel(
                f"qiskit-chunk-init-{c}",
                [ArrayAccess.write_(self._chunk_dev)],
            )
            gh.memcpy_d2h(self._host_sv, self._chunk_dev)
        if self._host_sv.materialized:
            self._host_sv.np[:] = 0
            self._host_sv.np[0] = 1.0

    def _chunked_layer(self, gh: GraceHopperSystem, layer: int) -> None:
        """One circuit layer streamed through the device chunk buffers.

        Aer's heterogeneous pipeline double-buffers: while one chunk
        computes, the next is copied in and the previous copied out on
        separate copy engines. Steady-state time per chunk is therefore
        max(H2D, compute, D2H) — the pipeline the paper credits with
        "ideal performance" (Section 4).
        """
        n_chunks = -(-self._host_sv.nbytes // self._chunk_dev.nbytes)
        chunk_bytes = self._chunk_dev.nbytes
        cfg = gh.config
        for sweep in range(SWEEPS_PER_LAYER):
            h2d = chunk_bytes / cfg.c2c_h2d_bandwidth
            d2h = chunk_bytes / cfg.c2c_d2h_bandwidth
            for c in range(n_chunks):
                rec = gh.launch_kernel(
                    f"qiskit-l{layer}s{sweep}c{c}",
                    [
                        ArrayAccess.read(self._chunk_dev),
                        ArrayAccess.write_(self._chunk_dev),
                    ],
                    flops=24.0 * (chunk_bytes // AMPLITUDE_BYTES),
                )
                # Stall only for the non-overlapped remainder of the two
                # DMA transfers relative to this chunk's compute time.
                bottleneck = max(h2d, d2h, rec.duration)
                gh.clock.advance(
                    max(0.0, bottleneck - rec.duration),
                    activity="qiskit-pipeline-dma",
                )
                gh.counters.total.add(explicit_copy_bytes=2 * chunk_bytes)
                gh.mem.link.account_external(chunk_bytes, Processor.CPU, h2d)
                gh.mem.link.account_external(chunk_bytes, Processor.GPU, d2h)

    def teardown(self, gh: GraceHopperSystem) -> None:
        if self._chunked:
            gh.free(self._host_sv)
            gh.free(self._chunk_dev)
        gh.free(self.aux)
        super().teardown(gh)

    def verify(self, result: AppResult) -> None:
        norm = result.correctness.get("norm")
        if norm is None:
            return
        if abs(norm - 1.0) > 1e-3:
            raise AssertionError(f"statevector norm {norm} deviates from 1")
        hop = result.correctness["heavy_output_probability"]
        if not 0.5 < hop <= 1.0:
            raise AssertionError(
                f"heavy-output probability {hop} not in the QV-passing range"
            )
