"""A real statevector quantum simulator (the Qiskit-Aer stand-in).

Implements exact statevector evolution with numpy tensor reshapes —
single- and two-qubit gate application, measurement probabilities, and
sampling — sufficient to run Quantum Volume circuits for real at small
qubit counts. The performance model in :mod:`repro.apps.quantum.app`
drives the memory simulator with the same sweep structure this engine
executes, so the functional and performance paths share their shape.

Amplitudes are complex64 by default: the paper sizes the statevector as
``8 * 2**N`` bytes.
"""

from __future__ import annotations

import numpy as np

PAULI_X = np.array([[0, 1], [1, 0]], dtype=np.complex64)
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=np.complex64)
HADAMARD = np.array([[1, 1], [1, -1]], dtype=np.complex64) / np.sqrt(2)


def random_su4(rng: np.random.Generator) -> np.ndarray:
    """A Haar-random SU(4) matrix (QR of a complex Ginibre matrix)."""
    z = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
    q, r = np.linalg.qr(z)
    q = q * (np.diagonal(r) / np.abs(np.diagonal(r)))
    det = np.linalg.det(q)
    return (q / det ** (1 / 4)).astype(np.complex64)


class Statevector:
    """Exact statevector of an ``n_qubits`` register."""

    def __init__(self, n_qubits: int, dtype=np.complex64,
                 buffer: np.ndarray | None = None):
        if n_qubits < 1:
            raise ValueError("need at least one qubit")
        self.n_qubits = n_qubits
        self.dtype = np.dtype(dtype)
        dim = 1 << n_qubits
        if buffer is not None:
            if buffer.size < dim:
                raise ValueError("backing buffer too small")
            self.amplitudes = buffer[:dim]
        else:
            self.amplitudes = np.zeros(dim, dtype=self.dtype)
        self.reset()

    def reset(self) -> None:
        self.amplitudes[:] = 0
        self.amplitudes[0] = 1.0

    @property
    def nbytes(self) -> int:
        return self.amplitudes.nbytes

    def norm(self) -> float:
        return float(np.sqrt(np.sum(np.abs(self.amplitudes) ** 2)))

    # -- gate application -----------------------------------------------------

    def _tensorised(self) -> np.ndarray:
        return self.amplitudes.reshape((2,) * self.n_qubits)

    def apply_single(self, gate: np.ndarray, qubit: int) -> None:
        """Apply a 2x2 gate to ``qubit`` (qubit 0 = least significant)."""
        self._check_qubit(qubit)
        gate = np.asarray(gate, dtype=self.dtype)
        if gate.shape != (2, 2):
            raise ValueError("single-qubit gate must be 2x2")
        axis = self.n_qubits - 1 - qubit
        psi = np.moveaxis(self._tensorised(), axis, 0)
        psi[:] = np.tensordot(gate, psi, axes=([1], [0]))

    def apply_two(self, gate: np.ndarray, q0: int, q1: int) -> None:
        """Apply a 4x4 gate to the ordered qubit pair ``(q0, q1)``."""
        self._check_qubit(q0)
        self._check_qubit(q1)
        if q0 == q1:
            raise ValueError("two-qubit gate needs distinct qubits")
        gate = np.asarray(gate, dtype=self.dtype).reshape(2, 2, 2, 2)
        a0 = self.n_qubits - 1 - q0
        a1 = self.n_qubits - 1 - q1
        psi = self._tensorised()
        psi2 = np.moveaxis(psi, (a0, a1), (0, 1))
        psi2[:] = np.einsum("abcd,cd...->ab...", gate, psi2, optimize=True)

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.n_qubits:
            raise ValueError(f"qubit {qubit} out of range [0, {self.n_qubits})")

    # -- measurement ------------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        return np.abs(self.amplitudes.astype(np.complex128)) ** 2

    def sample_counts(
        self, shots: int, rng: np.random.Generator
    ) -> dict[int, int]:
        p = self.probabilities()
        p = p / p.sum()
        outcomes = rng.choice(p.size, size=shots, p=p)
        values, counts = np.unique(outcomes, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def heavy_output_probability(self) -> float:
        """Probability mass on outputs above the median probability — the
        Quantum Volume acceptance statistic (ideal simulators give ~0.85
        for Haar-random circuits, 0.5 for flat distributions)."""
        p = self.probabilities()
        median = np.median(p)
        return float(p[p > median].sum())
