"""Hotspot: differential-equation thermal simulation (Rodinia).

A regular-access application (Table 2, 16k x 16k input): an iterative
5-point stencil over a temperature grid driven by a power grid. Both
grids are CPU-initialised (the classic pattern of Section 5.1.1) and the
GPU alternates between the unified temperature buffer and a GPU-only
scratch buffer, matching Rodinia's ping-pong `MatrixTemp[src|dst]`.

The functional computation (materialised runs) is the standard explicit
Euler update; tests verify it against a pure-numpy reference.
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import ArrayAccess
from ..core.porting import MemoryMode
from ..core.runtime import GraceHopperSystem
from .base import Application, AppResult, register_application

#: Physical constants of the Rodinia kernel.
CAP = 0.5
RX, RY, RZ = 1.0, 1.0, 80.0
STEP = 0.001


def stencil_reference(temp: np.ndarray, power: np.ndarray, steps: int) -> np.ndarray:
    """Pure-numpy reference implementation of the hotspot update."""
    t = temp.astype(np.float64, copy=True)
    for _ in range(steps):
        north = np.vstack([t[:1], t[:-1]])
        south = np.vstack([t[1:], t[-1:]])
        west = np.hstack([t[:, :1], t[:, :-1]])
        east = np.hstack([t[:, 1:], t[:, -1:]])
        delta = (STEP / CAP) * (
            power
            + (north + south - 2 * t) / RY
            + (east + west - 2 * t) / RX
            + (80.0 - t) / RZ
        )
        t = t + delta
    return t.astype(np.float32)


@register_application
class Hotspot(Application):
    """Differential equation solver for thermal simulation."""

    name = "hotspot"
    pattern = "regular"
    paper_input = "16k x 16k"

    PAPER_DIM = 16 * 1024

    def __init__(self, scale: float = 1.0, iterations: int = 2, seed: int = 7):
        super().__init__(scale)
        self.rows = self.dim(self.PAPER_DIM)
        self.cols = self.rows
        self.iterations = iterations
        self.seed = seed

    def working_set_bytes(self) -> int:
        return 3 * self.rows * self.cols * 4

    # -- phases -----------------------------------------------------------

    def setup(self, gh: GraceHopperSystem, mode: MemoryMode, materialize: bool):
        shape = (self.rows, self.cols)
        self.temp = self.buffer(
            gh, mode, "temp", np.float32, shape, materialize=materialize
        )
        self.power = self.buffer(
            gh, mode, "power", np.float32, shape, materialize=materialize
        )
        self.scratch = self.buffer(
            gh, mode, "scratch", np.float32, shape, gpu_only=True,
            materialize=materialize,
        )

    def cpu_init(self, gh: GraceHopperSystem, mode: MemoryMode) -> None:
        def fill():
            if self.temp.cpu_target.materialized:
                rng = np.random.default_rng(self.seed)
                self.temp.cpu_target.np[:] = 320.0 + 10.0 * rng.random(
                    (self.rows, self.cols), dtype=np.float32
                )
                self.power.cpu_target.np[:] = 0.1 * rng.random(
                    (self.rows, self.cols), dtype=np.float32
                )

        self.chunked_cpu_init(
            gh,
            [self.temp.cpu_target, self.power.cpu_target],
            compute=fill,
        )

    def compute(self, gh: GraceHopperSystem, mode: MemoryMode, result: AppResult):
        self.temp.h2d()
        self.power.h2d()

        temp_arr = self.temp.gpu_target
        power_arr = self.power.gpu_target
        scratch_arr = self.scratch.gpu_target

        materialized = temp_arr.materialized

        src, dst = temp_arr, scratch_arr
        for it in range(self.iterations):
            def step(src=src, dst=dst):
                if materialized:
                    dst.np[:] = stencil_reference(src.np, power_arr.np, 1)

            t0 = gh.now
            gh.launch_kernel(
                f"hotspot-step-{it}",
                [
                    ArrayAccess.read(src),
                    ArrayAccess.read(power_arr),
                    ArrayAccess.write_(dst),
                ],
                flops=10.0 * self.rows * self.cols,
                reuse=3.0,  # stencil neighbours hit in cache
                compute=step,
            )
            result.iteration_times.append(gh.now - t0)
            src, dst = dst, src

        # Result lands in the unified/explicit temp buffer: if the final
        # iteration wrote to scratch, one more device-side copy brings it
        # back (as Rodinia does by choosing the output buffer).
        if src is scratch_arr:
            gh.launch_kernel(
                "hotspot-writeback",
                [ArrayAccess.read(scratch_arr), ArrayAccess.write_(temp_arr)],
                compute=(
                    (lambda: temp_arr.np.__setitem__(slice(None), scratch_arr.np))
                    if materialized
                    else None
                ),
            )
        self.temp.d2h()
        result.correctness["final_temp"] = (
            self.temp.cpu_target.np.copy() if materialized else None
        )

    def verify(self, result: AppResult) -> None:
        final = result.correctness.get("final_temp")
        if final is None:
            return
        rng = np.random.default_rng(self.seed)
        temp0 = 320.0 + 10.0 * rng.random((self.rows, self.cols), dtype=np.float32)
        power0 = 0.1 * rng.random((self.rows, self.cols), dtype=np.float32)
        expect = stencil_reference(temp0, power0, self.iterations)
        if not np.allclose(final, expect, rtol=1e-4, atol=1e-3):
            raise AssertionError("hotspot result diverges from reference stencil")
