"""Pathfinder: 2-D grid dynamic-programming path search (Rodinia).

A regular-access application (Table 2, 100k x 20k input). The wall grid
is CPU-initialised; the GPU sweeps it row-slab by row-slab (Rodinia's
pyramid blocks), keeping only two result rows live. The access pattern is
a single streaming pass over the whole wall — the archetype that favours
system memory's migration-free remote reads over managed memory's
migrate-everything-once behaviour.
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import ArrayAccess
from ..core.porting import MemoryMode
from ..core.runtime import GraceHopperSystem
from .base import Application, AppResult, register_application


def pathfinder_reference(wall: np.ndarray) -> np.ndarray:
    """Reference DP: minimum path cost per column, bottom row first."""
    dist = wall[0].astype(np.int64, copy=True)
    for r in range(1, wall.shape[0]):
        left = np.concatenate([[np.iinfo(np.int64).max], dist[:-1]])
        right = np.concatenate([dist[1:], [np.iinfo(np.int64).max]])
        dist = wall[r] + np.minimum(dist, np.minimum(left, right))
    return dist


@register_application
class Pathfinder(Application):
    """2-D grid pathfinding algorithm."""

    name = "pathfinder"
    pattern = "regular"
    paper_input = "100k x 20k"

    PAPER_COLS = 100_000
    PAPER_ROWS = 20_000

    def __init__(self, scale: float = 1.0, pyramid_height: int = 20, seed: int = 11):
        super().__init__(scale)
        self.cols = self.dim(self.PAPER_COLS)
        self.rows = self.dim(self.PAPER_ROWS)
        self.pyramid_height = max(1, pyramid_height)
        self.seed = seed

    def working_set_bytes(self) -> int:
        return self.rows * self.cols * 4 + 2 * self.cols * 4

    def setup(self, gh: GraceHopperSystem, mode: MemoryMode, materialize: bool):
        self.wall = self.buffer(
            gh, mode, "wall", np.int32, (self.rows, self.cols),
            materialize=materialize,
        )
        # The two ping-pong result rows are GPU intermediaries in Rodinia.
        self.result = self.buffer(
            gh, mode, "result", np.int32, (2, self.cols), materialize=materialize
        )

    def cpu_init(self, gh: GraceHopperSystem, mode: MemoryMode) -> None:
        def fill():
            if self.wall.cpu_target.materialized:
                rng = np.random.default_rng(self.seed)
                self.wall.cpu_target.np[:] = rng.integers(
                    0, 10, size=(self.rows, self.cols), dtype=np.int32
                )

        self.chunked_cpu_init(gh, [self.wall.cpu_target], compute=fill)

    def compute(self, gh: GraceHopperSystem, mode: MemoryMode, result: AppResult):
        self.wall.h2d()
        wall_arr = self.wall.gpu_target
        res_arr = self.result.gpu_target
        materialized = wall_arr.materialized
        dist = [None]
        if materialized:
            dist[0] = wall_arr.np[0].astype(np.int64)

        row = 1
        launch = 0
        while row < self.rows:
            slab_end = min(row + self.pyramid_height, self.rows)

            def step(row=row, slab_end=slab_end):
                if materialized:
                    d = dist[0]
                    big = np.iinfo(np.int64).max
                    for r in range(row, slab_end):
                        left = np.concatenate([[big], d[:-1]])
                        right = np.concatenate([d[1:], [big]])
                        d = wall_arr.np[r] + np.minimum(
                            d, np.minimum(left, right)
                        )
                    dist[0] = d

            t0 = gh.now
            gh.launch_kernel(
                f"pathfinder-slab-{launch}",
                [
                    ArrayAccess.read(wall_arr, wall_arr.pages_of_rows(row, slab_end)),
                    ArrayAccess.read(res_arr),
                    ArrayAccess.write_(res_arr),
                ],
                flops=4.0 * (slab_end - row) * self.cols,
                compute=step,
            )
            result.iteration_times.append(gh.now - t0)
            row = slab_end
            launch += 1

        self.result.d2h()
        result.correctness["min_cost"] = (
            int(dist[0].min()) if materialized else None
        )

    def verify(self, result: AppResult) -> None:
        got = result.correctness.get("min_cost")
        if got is None:
            return
        rng = np.random.default_rng(self.seed)
        wall = rng.integers(0, 10, size=(self.rows, self.cols), dtype=np.int32)
        expect = int(pathfinder_reference(wall).min())
        if got != expect:
            raise AssertionError(
                f"pathfinder min cost {got} != reference {expect}"
            )
