"""Domain-sharded multi-GPU workloads (beyond-paper extrapolation).

The paper studies one GH200 superchip; deployed systems gang several into
one node (quad-GH200). These workloads shard across the
:class:`~repro.topology.ShardedSystem` fabric in the two canonical ways:

* :class:`ShardedHotspot` — row-block domain decomposition of the Rodinia
  thermal stencil with a per-iteration *halo exchange* of one boundary
  row per neighbour. Compute scales with ``1/P`` while the halo is a
  fixed, tiny fraction of the grid, so scaling stays near-linear.
* :class:`ShardedQuantumVolume` — the Aer-style distributed statevector:
  each GPU owns ``2^n / P`` amplitudes; gates on the top ``log2(P)``
  *global* qubits require a pairwise (butterfly) exchange of half of
  every shard's amplitudes. Exchange volume scales with the statevector,
  so the NVLink fabric — two orders of magnitude slower than HBM —
  becomes the bottleneck and scaling flattens.

Both report a compute/exchange split plus the per-link fabric traffic,
the quantities the ``topo_scaling`` experiment sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.kernels import ArrayAccess
from ..core.runtime import GraceHopperSystem
from ..mem.numa import NumaAllocator, NumaPolicy
from ..profiling.counters import CounterSet
from ..topology.sharded import ShardedSystem
from .quantum.app import AMPLITUDE_BYTES, SWEEPS_PER_LAYER

#: Supported placements for the sharded working set, named after the
#: NUMA policy they model: GPU first-touch (pages in the owning HBM),
#: CPU first-touch (pages in the owning DDR, access-counter migration
#: pulls the hot ones over), and 1:1 DDR/HBM page interleaving.
PLACEMENTS = ("gpu", "cpu", "interleave")


@dataclass
class ShardedRunResult:
    """Outcome of one sharded run (per-node aggregates)."""

    app: str
    n_superchips: int
    placement: str
    iterations: int
    init_seconds: float = 0.0
    compute_seconds: float = 0.0
    exchange_seconds: float = 0.0
    exchange_bytes: int = 0
    hop_bytes: int = 0
    per_link_bytes: dict[str, int] = field(default_factory=dict)
    counters: CounterSet = field(default_factory=CounterSet)

    @property
    def total_seconds(self) -> float:
        """The reported (steady-phase) time: compute plus exchange."""
        return self.compute_seconds + self.exchange_seconds


def _place_and_init(gh: GraceHopperSystem, arr, placement: str) -> None:
    """Realise ``placement`` for one shard-local system allocation."""
    if placement == "interleave":
        NumaAllocator(gh.config, gh.mem.physical).place(
            arr.alloc, NumaPolicy.INTERLEAVE
        )
        gh.cpu_phase(f"init:{arr.name}", [ArrayAccess.write_(arr)])
    elif placement == "cpu":
        gh.cpu_phase(f"init:{arr.name}", [ArrayAccess.write_(arr)])
    elif placement == "gpu":
        gh.launch_kernel(f"init:{arr.name}", [ArrayAccess.write_(arr)])
    else:
        raise ValueError(f"unknown placement {placement!r}; use {PLACEMENTS}")


class ShardedHotspot:
    """Row-block sharded Rodinia hotspot with halo exchange."""

    name = "hotspot-sharded"
    PAPER_DIM = 16 * 1024

    def __init__(
        self, scale: float = 1.0, iterations: int = 4, placement: str = "cpu"
    ):
        if placement not in PLACEMENTS:
            raise ValueError(f"unknown placement {placement!r}; use {PLACEMENTS}")
        dim = max(64, int(round(self.PAPER_DIM * math.sqrt(scale))))
        self.rows = self.cols = dim
        self.iterations = iterations
        self.placement = placement

    def run(self, system: ShardedSystem) -> ShardedRunResult:
        P = system.n_superchips
        rows_per = -(-self.rows // P)
        result = ShardedRunResult(
            self.name, P, self.placement, self.iterations
        )
        start = system.aggregate_counters()

        # -- allocation + init (one row-block plus two halo rows each) ----
        t0 = system.barrier()
        temps, powers, scratches = [], [], []
        def setup(i, gh):
            shape = (rows_per + 2, self.cols)
            temp = gh.malloc(np.float32, shape, name=f"temp{i}")
            power = gh.malloc(np.float32, (rows_per, self.cols), name=f"power{i}")
            scratch = gh.cuda_malloc(np.float32, shape, name=f"scratch{i}")
            _place_and_init(gh, temp, self.placement)
            _place_and_init(gh, power, self.placement)
            temps.append(temp)
            powers.append(power)
            scratches.append(scratch)
        system.step(setup, label="setup")
        result.init_seconds = system.now - t0

        # -- iterate: stencil superstep, then halo exchange ----------------
        halo_bytes = self.cols * 4
        for it in range(self.iterations):
            t0 = system.barrier()
            def stencil(i, gh):
                gh.launch_kernel(
                    f"hotspot-step{it}-{i}",
                    [
                        ArrayAccess.read(temps[i]),
                        ArrayAccess.read(powers[i]),
                        ArrayAccess.write_(scratches[i]),
                    ],
                    flops=10.0 * rows_per * self.cols,
                    reuse=3.0,  # stencil neighbours hit in cache
                )
            system.step(stencil, label=f"stencil{it}")
            result.compute_seconds += system.now - t0

            if P > 1:
                transfers = []
                for i in range(P):
                    me = system.ports[i].hbm
                    if i > 0:
                        transfers.append((halo_bytes, me, system.ports[i - 1].hbm))
                    if i < P - 1:
                        transfers.append((halo_bytes, me, system.ports[i + 1].hbm))
                out = system.exchange(transfers, label=f"halo{it}")
                result.exchange_seconds += out.seconds
                result.exchange_bytes += out.total_bytes
                result.hop_bytes += out.hop_bytes
                for name, nbytes in out.per_link_bytes.items():
                    result.per_link_bytes[name] = (
                        result.per_link_bytes.get(name, 0) + nbytes
                    )

        system.step(lambda i, gh: (
            gh.free(temps[i]), gh.free(powers[i]), gh.free(scratches[i])
        ), label="teardown")
        result.counters = system.aggregate_counters().delta(start)
        return result


class ShardedQuantumVolume:
    """Distributed-statevector Quantum Volume with butterfly exchanges."""

    name = "qv-sharded"
    PAPER_QUBITS = 30

    def __init__(
        self,
        scale: float = 1.0,
        qubits: int | None = None,
        depth: int | None = None,
        placement: str = "gpu",
    ):
        if placement not in PLACEMENTS:
            raise ValueError(f"unknown placement {placement!r}; use {PLACEMENTS}")
        if qubits is None:
            # Footprint scales linearly with ``scale`` (one qubit per
            # doubling), like the square-circuit convention elsewhere.
            qubits = self.PAPER_QUBITS + int(round(math.log2(scale))) if scale != 1.0 else self.PAPER_QUBITS
        self.qubits = max(qubits, 8)
        self.depth = depth if depth is not None else min(self.qubits, 8)
        self.placement = placement

    def run(self, system: ShardedSystem) -> ShardedRunResult:
        P = system.n_superchips
        if P & (P - 1):
            raise ValueError("statevector sharding needs a power-of-two P")
        global_qubits = P.bit_length() - 1
        local_amps = (1 << self.qubits) // P
        local_bytes = local_amps * AMPLITUDE_BYTES
        result = ShardedRunResult(self.name, P, self.placement, self.depth)
        start = system.aggregate_counters()

        t0 = system.barrier()
        shards = []
        def setup(i, gh):
            sv = gh.malloc(np.complex64, (local_amps,), name=f"sv{i}")
            _place_and_init(gh, sv, self.placement)
            shards.append(sv)
        system.step(setup, label="setup")
        result.init_seconds = system.now - t0

        for layer in range(self.depth):
            t0 = system.barrier()
            def sweep(i, gh):
                for s in range(SWEEPS_PER_LAYER):
                    gh.launch_kernel(
                        f"qv-layer{layer}-sweep{s}-{i}",
                        [ArrayAccess.read(shards[i]), ArrayAccess.write_(shards[i])],
                        flops=24.0 * local_amps,
                    )
            system.step(sweep, label=f"layer{layer}")
            result.compute_seconds += system.now - t0

            if global_qubits:
                # A gate on one global qubit pairs each shard with the
                # partner differing in that bit; half the local amplitudes
                # cross the fabric in each direction (Aer's chunk swap).
                bit = layer % global_qubits
                transfers = [
                    (local_bytes // 2, system.ports[i].hbm,
                     system.ports[i ^ (1 << bit)].hbm)
                    for i in range(P)
                ]
                out = system.exchange(transfers, label=f"butterfly{layer}")
                result.exchange_seconds += out.seconds
                result.exchange_bytes += out.total_bytes
                result.hop_bytes += out.hop_bytes
                for name, nbytes in out.per_link_bytes.items():
                    result.per_link_bytes[name] = (
                        result.per_link_bytes.get(name, 0) + nbytes
                    )

        system.step(lambda i, gh: gh.free(shards[i]), label="teardown")
        result.counters = system.aggregate_counters().delta(start)
        return result


SHARDED_APPS = {
    ShardedHotspot.name: ShardedHotspot,
    ShardedQuantumVolume.name: ShardedQuantumVolume,
}


def get_sharded_application(name: str, **kwargs):
    try:
        cls = SHARDED_APPS[name]
    except KeyError:
        raise KeyError(
            f"unknown sharded application {name!r}; known: {sorted(SHARDED_APPS)}"
        ) from None
    return cls(**kwargs)
