"""Synthetic workloads beyond the paper's six applications.

The paper closes with: "Future works will need a deep understanding of
the access counter-based migration on diverse workloads." These three
synthetic applications span the access-pattern space the Table 2 set
leaves uncovered, and feed the ``abl_*`` migration ablations:

* :class:`Gups` — pure random updates (HPCC RandomAccess): the worst
  case for page-granularity migration, every page touched uniformly but
  sparsely;
* :class:`Triad` — pure streaming with a configurable reuse count: the
  knob that moves a workload across the migrate/don't-migrate frontier;
* :class:`HotCold` — a skewed working set (a small hot region absorbing
  most accesses): the best case for access-counter migration, which can
  move *only* the hot pages.
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import ArrayAccess
from ..core.porting import MemoryMode
from ..core.runtime import GraceHopperSystem
from ..workloads.patterns import irregular_gather
from .base import Application, AppResult, register_application


@register_application
class Gups(Application):
    """Giga-updates-per-second random access (HPCC RandomAccess)."""

    name = "gups"
    pattern = "irregular"
    paper_input = "4 GiB table"
    category = "extra"

    PAPER_TABLE_BYTES = 4 * 1024**3

    def __init__(self, scale: float = 1.0, updates_per_epoch: int = 1 << 22,
                 epochs: int = 8, seed: int = 23):
        super().__init__(scale)
        self.table_words = max(
            1 << 10, int(self.PAPER_TABLE_BYTES * scale) // 8
        )
        self.updates = updates_per_epoch
        self.epochs = epochs
        self.seed = seed

    def working_set_bytes(self) -> int:
        return self.table_words * 8

    def setup(self, gh: GraceHopperSystem, mode: MemoryMode, materialize: bool):
        self.table = self.buffer(
            gh, mode, "table", np.uint64, (self.table_words,),
            materialize=materialize,
        )

    def cpu_init(self, gh: GraceHopperSystem, mode: MemoryMode) -> None:
        def fill():
            if self.table.cpu_target.materialized:
                self.table.cpu_target.np[:] = np.arange(
                    self.table_words, dtype=np.uint64
                )

        self.chunked_cpu_init(gh, [self.table.cpu_target], compute=fill)

    def compute(self, gh: GraceHopperSystem, mode: MemoryMode, result: AppResult):
        self.table.h2d()
        arr = self.table.gpu_target
        rng = np.random.default_rng(self.seed)
        for epoch in range(self.epochs):
            gather = irregular_gather(
                arr, min(self.updates, arr.size), rng=rng, write=True
            )
            t0 = gh.now
            gh.launch_kernel(
                f"gups-{epoch}",
                [gather],
                atomics=min(self.updates, arr.size),
            )
            result.iteration_times.append(gh.now - t0)
        self.table.d2h()
        if arr.materialized:
            result.correctness["checksum"] = int(
                np.bitwise_xor.reduce(arr.np)
            )


@register_application
class Triad(Application):
    """STREAM-triad style streaming with a tunable reuse count."""

    name = "triad"
    pattern = "regular"
    paper_input = "3 x 2 GiB streams"
    category = "extra"

    PAPER_STREAM_BYTES = 2 * 1024**3

    def __init__(self, scale: float = 1.0, passes: int = 1, seed: int = 29):
        super().__init__(scale)
        self.n = max(1 << 10, int(self.PAPER_STREAM_BYTES * scale) // 8)
        self.passes = max(1, passes)
        self.seed = seed

    def working_set_bytes(self) -> int:
        return 3 * self.n * 8

    def setup(self, gh: GraceHopperSystem, mode: MemoryMode, materialize: bool):
        self.a = self.buffer(gh, mode, "a", np.float64, (self.n,),
                             materialize=materialize)
        self.b = self.buffer(gh, mode, "b", np.float64, (self.n,),
                             materialize=materialize)
        self.c = self.buffer(gh, mode, "c", np.float64, (self.n,),
                             materialize=materialize)

    def cpu_init(self, gh: GraceHopperSystem, mode: MemoryMode) -> None:
        def fill():
            if self.b.cpu_target.materialized:
                rng = np.random.default_rng(self.seed)
                self.b.cpu_target.np[:] = rng.random(self.n)
                self.c.cpu_target.np[:] = rng.random(self.n)

        self.chunked_cpu_init(
            gh, [self.b.cpu_target, self.c.cpu_target], compute=fill
        )

    def compute(self, gh: GraceHopperSystem, mode: MemoryMode, result: AppResult):
        for buf in (self.a, self.b, self.c):
            buf.h2d()
        a, b, c = (x.gpu_target for x in (self.a, self.b, self.c))
        for p in range(self.passes):
            def triad():
                if a.materialized:
                    a.np[:] = b.np + 3.0 * c.np

            t0 = gh.now
            gh.launch_kernel(
                f"triad-{p}",
                [
                    ArrayAccess.read(b),
                    ArrayAccess.read(c),
                    ArrayAccess.write_(a),
                ],
                flops=2.0 * self.n,
                compute=triad,
            )
            result.iteration_times.append(gh.now - t0)
        self.a.d2h()
        if a.materialized:
            result.correctness["sum"] = float(a.np.sum())

    def verify(self, result: AppResult) -> None:
        got = result.correctness.get("sum")
        if got is None:
            return
        rng = np.random.default_rng(self.seed)
        b = rng.random(self.n)
        c = rng.random(self.n)
        expect = float((b + 3.0 * c).sum())
        if abs(got - expect) > 1e-6 * max(abs(expect), 1.0):
            raise AssertionError(f"triad sum {got} != {expect}")


@register_application
class HotCold(Application):
    """A skewed working set: a small hot region takes most accesses."""

    name = "hotcold"
    pattern = "mixed"
    paper_input = "8 GiB, 90/10 skew"
    category = "extra"

    PAPER_BYTES = 8 * 1024**3

    def __init__(self, scale: float = 1.0, hot_fraction: float = 1 / 16,
                 hot_access_share: float = 0.9, epochs: int = 10,
                 seed: int = 31):
        super().__init__(scale)
        if not 0 < hot_fraction < 1:
            raise ValueError("hot_fraction must be in (0, 1)")
        if not 0 < hot_access_share <= 1:
            raise ValueError("hot_access_share must be in (0, 1]")
        self.words = max(1 << 12, int(self.PAPER_BYTES * scale) // 8)
        self.hot_fraction = hot_fraction
        self.hot_share = hot_access_share
        self.epochs = epochs
        self.seed = seed

    def working_set_bytes(self) -> int:
        return self.words * 8

    def setup(self, gh: GraceHopperSystem, mode: MemoryMode, materialize: bool):
        self.data = self.buffer(
            gh, mode, "data", np.float64, (self.words,), materialize=materialize
        )

    def cpu_init(self, gh: GraceHopperSystem, mode: MemoryMode) -> None:
        self.chunked_cpu_init(gh, [self.data.cpu_target])

    def compute(self, gh: GraceHopperSystem, mode: MemoryMode, result: AppResult):
        self.data.h2d()
        arr = self.data.gpu_target
        hot_words = int(self.words * self.hot_fraction)
        hot_pages = arr.pages_of_elements(0, hot_words)
        cold_pages = arr.pages_of_elements(hot_words, self.words)
        # Per-epoch useful traffic: the hot region is re-read in full with
        # `hot_share` of the access budget; the cold remainder is sampled.
        cold_fraction = max(
            (1 - self.hot_share) * self.hot_fraction / self.hot_share
            / max(1 - self.hot_fraction, 1e-9),
            arr.itemsize / arr.page_size,
        )
        for epoch in range(self.epochs):
            t0 = gh.now
            c0 = gh.counters.total.snapshot()
            gh.launch_kernel(
                f"hotcold-{epoch}",
                [
                    ArrayAccess.read(arr, hot_pages),
                    ArrayAccess.read(
                        arr, cold_pages,
                        fraction=min(1.0, cold_fraction), density=0.25,
                    ),
                ],
                flops=2.0 * hot_words,
            )
            result.iteration_times.append(gh.now - t0)
            delta = gh.counters.total.delta(c0)
            result.iteration_traffic.append(
                {
                    "gpu_read_bytes": delta.hbm_read_bytes,
                    "c2c_read_bytes": delta.c2c_read_bytes,
                    "migrated_h2d": delta.migration_h2d_bytes,
                    "migrated_d2h": delta.migration_d2h_bytes,
                }
            )
        self.data.d2h()
