"""The six studied applications (Table 2 of the paper)."""

from .base import (
    Application,
    AppResult,
    application_names,
    applications_table,
    get_application,
    register_application,
)
from .bfs import Bfs
from .hotspot import Hotspot
from .needle import Needle
from .pathfinder import Pathfinder
from .quantum import QuantumVolume
from .srad import Srad
from .synthetic import Gups, HotCold, Triad

__all__ = [
    "Application",
    "AppResult",
    "application_names",
    "applications_table",
    "get_application",
    "register_application",
    "Bfs",
    "Hotspot",
    "Needle",
    "Pathfinder",
    "QuantumVolume",
    "Srad",
    "Gups",
    "Triad",
    "HotCold",
]
