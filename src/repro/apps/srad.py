"""SRAD: Speckle Reducing Anisotropic Diffusion (Rodinia).

The iterative application of the study (Table 2, 20k x 20k input, 12
iterations in Figure 10). Per iteration:

1. a CPU-side statistics step reads the region of interest of the image
   (mean/variance of the ROI — Rodinia computes this on the host), which
   in managed memory can thrash GPU-resident pages while system memory
   serves it with remote cacheline reads (Section 6);
2. kernel 1 reads the image and writes the diffusion coefficient;
3. kernel 2 reads the coefficient and updates the image.

The image is CPU-initialised (Rodinia's ``random_matrix`` + ``exp``);
the coefficient buffer is unified but GPU-first-touched — giving srad the
GPU-side-initialisation flavour Section 5.1.2 discusses, and making it
the showcase for ``cudaHostRegister`` pre-population. Because the same
image is re-read every iteration, srad is the one Rodinia application
that *benefits* from access-counter migration (Figures 7 and 10).
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import ArrayAccess
from ..core.porting import MemoryMode
from ..core.runtime import GraceHopperSystem
from .base import Application, AppResult, register_application

LAMBDA = 0.5


def srad_reference(image: np.ndarray, iterations: int) -> np.ndarray:
    """Pure-numpy SRAD reference (Lee filter flavour of Rodinia)."""
    j = image.astype(np.float64, copy=True)
    for _ in range(iterations):
        mean = j.mean()
        var = j.var()
        q0s = var / (mean * mean + 1e-12)
        dn = np.vstack([j[:1], j[:-1]]) - j
        ds = np.vstack([j[1:], j[-1:]]) - j
        dw = np.hstack([j[:, :1], j[:, :-1]]) - j
        de = np.hstack([j[:, 1:], j[:, -1:]]) - j
        g2 = (dn**2 + ds**2 + dw**2 + de**2) / (j * j + 1e-12)
        l_ = (dn + ds + dw + de) / (j + 1e-12)
        num = 0.5 * g2 - (1.0 / 16.0) * (l_ * l_)
        den = (1 + 0.25 * l_) ** 2
        qsqr = num / (den + 1e-12)
        c = 1.0 / (1.0 + (qsqr - q0s) / (q0s * (1 + q0s) + 1e-12))
        c = np.clip(c, 0.0, 1.0)
        cs = np.vstack([c[1:], c[-1:]])
        ce = np.hstack([c[:, 1:], c[:, -1:]])
        d = c * dn + cs * ds + c * dw + ce * de
        j = j + 0.25 * LAMBDA * d
    return j.astype(np.float32)


@register_application
class Srad(Application):
    """Speckle Reducing Anisotropic Diffusion."""

    name = "srad"
    pattern = "irregular"
    paper_input = "20k x 20k"

    PAPER_DIM = 20 * 1024

    def __init__(self, scale: float = 1.0, iterations: int = 12, seed: int = 13,
                 roi_fraction: float = 1 / 4096):
        super().__init__(scale)
        self.rows = self.dim(self.PAPER_DIM)
        self.cols = self.rows
        self.iterations = iterations
        self.seed = seed
        self.roi_fraction = roi_fraction

    def working_set_bytes(self) -> int:
        return 6 * self.rows * self.cols * 4

    def setup(self, gh: GraceHopperSystem, mode: MemoryMode, materialize: bool):
        shape = (self.rows, self.cols)
        self.image = self.buffer(
            gh, mode, "image", np.float32, shape, materialize=materialize
        )
        # The diffusion coefficient is unified (the CPU statistics step
        # may read it) but is first touched by the GPU.
        self.coeff = self.buffer(
            gh, mode, "coeff", np.float32, shape, materialize=materialize
        )
        # Directional derivatives: cudaMalloc scratch in the original
        # explicit code; in the unified ports they live in the unified
        # space (GPU-first-touched) so oversubscription can spill them —
        # part of why the paper classifies srad as GPU-initialised.
        self.deriv = self.buffer(
            gh, mode, "deriv", np.float32, (4, self.rows, self.cols),
            gpu_only=(mode is MemoryMode.EXPLICIT), materialize=False,
        )
        # The explicit version copies the ROI back to a host staging
        # buffer each iteration for the CPU statistics step; unified
        # versions read the shared buffer directly.
        self._roi_rows = max(1, int(self.rows * np.sqrt(self.roi_fraction)))
        if mode is MemoryMode.EXPLICIT:
            self._roi_host = gh.malloc(
                np.float32, (self._roi_rows, self.cols), name="srad.roi_host"
            )
        else:
            self._roi_host = None

    def cpu_init(self, gh: GraceHopperSystem, mode: MemoryMode) -> None:
        def fill():
            if self.image.cpu_target.materialized:
                rng = np.random.default_rng(self.seed)
                self.image.cpu_target.np[:] = np.exp(
                    rng.random((self.rows, self.cols), dtype=np.float32)
                )

        self.chunked_cpu_init(gh, [self.image.cpu_target], compute=fill)

    def compute(self, gh: GraceHopperSystem, mode: MemoryMode, result: AppResult):
        self.image.h2d()
        img = self.image.gpu_target
        coeff = self.coeff.gpu_target
        deriv = self.deriv.gpu_target
        materialized = img.materialized
        state = [img.np.copy()] if materialized else [None]

        roi_rows = self._roi_rows

        for it in range(self.iterations):
            t0 = gh.now
            c0 = gh.counters.total.snapshot()

            # (1) host-side ROI statistics (mean/variance).
            if self._roi_host is not None:
                gh.memcpy_d2h(self._roi_host, img)
                gh.cpu_phase(
                    f"srad-stats-{it}",
                    [ArrayAccess.read(self._roi_host)],
                )
            else:
                gh.cpu_phase(
                    f"srad-stats-{it}",
                    [ArrayAccess.read(img, img.pages_of_rows(0, roi_rows))],
                )
            # (2) gradient + coefficient kernel.
            gh.launch_kernel(
                f"srad-k1-{it}",
                [
                    ArrayAccess.read(img),
                    ArrayAccess.write_(coeff),
                    ArrayAccess.write_(deriv),
                ],
                flops=40.0 * self.rows * self.cols,
                reuse=3.0,
            )
            # (3) update kernel.
            def update():
                if materialized:
                    state[0] = srad_reference(state[0], 1)

            gh.launch_kernel(
                f"srad-k2-{it}",
                [
                    ArrayAccess.read(coeff),
                    ArrayAccess.read(deriv),
                    ArrayAccess.write_(img),
                ],
                flops=20.0 * self.rows * self.cols,
                reuse=2.0,
                compute=update,
            )
            result.iteration_times.append(gh.now - t0)
            delta = gh.counters.total.delta(c0)
            result.iteration_traffic.append(
                {
                    "gpu_read_bytes": delta.hbm_read_bytes,
                    "c2c_read_bytes": delta.c2c_read_bytes,
                    "migrated_h2d": delta.migration_h2d_bytes,
                    "migrated_d2h": delta.migration_d2h_bytes,
                }
            )

        if materialized:
            img.np[:] = state[0]
        self.image.d2h()
        result.correctness["final_image"] = (
            self.image.cpu_target.np.copy() if materialized else None
        )

    def teardown(self, gh: GraceHopperSystem) -> None:
        if self._roi_host is not None:
            gh.free(self._roi_host)
            self._roi_host = None
        super().teardown(gh)

    def verify(self, result: AppResult) -> None:
        final = result.correctness.get("final_image")
        if final is None:
            return
        rng = np.random.default_rng(self.seed)
        img0 = np.exp(rng.random((self.rows, self.cols), dtype=np.float32))
        expect = srad_reference(img0, self.iterations)
        if not np.allclose(final, expect, rtol=1e-3, atol=1e-4):
            raise AssertionError("srad image diverges from reference")
