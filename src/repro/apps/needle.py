"""Needle: Needleman-Wunsch sequence alignment (Rodinia).

An irregular-access application (Table 2, 32k x 32k input). The DP
matrix and the substitution-reference matrix are CPU-initialised; the
GPU then processes anti-diagonal block waves. Each wave touches a
scattered set of blocks — pages from many distant rows — which is what
makes needle's pattern irregular despite the dense per-block math.

The functional path computes the real alignment score with a vectorised
anti-diagonal DP, verified against a plain O(n^2) reference in tests.
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import ArrayAccess
from ..core.porting import MemoryMode
from ..core.runtime import GraceHopperSystem
from ..mem.pageset import PageSet
from .base import Application, AppResult, register_application


def needleman_wunsch_reference(
    seq1: np.ndarray, seq2: np.ndarray, penalty: int
) -> int:
    """Plain DP reference; returns the alignment score."""
    n, m = len(seq1) + 1, len(seq2) + 1
    score = np.zeros((n, m), dtype=np.int64)
    score[0, :] = -penalty * np.arange(m)
    score[:, 0] = -penalty * np.arange(n)
    match = (seq1[:, None] == seq2[None, :]).astype(np.int64) * 2 - 1
    for i in range(1, n):
        for j in range(1, m):
            score[i, j] = max(
                score[i - 1, j - 1] + match[i - 1, j - 1],
                score[i - 1, j] - penalty,
                score[i, j - 1] - penalty,
            )
    return int(score[n - 1, m - 1])


def needleman_wunsch_antidiagonal(
    seq1: np.ndarray, seq2: np.ndarray, penalty: int
) -> int:
    """Vectorised anti-diagonal DP (the GPU algorithm's data flow)."""
    n, m = len(seq1) + 1, len(seq2) + 1
    score = np.zeros((n, m), dtype=np.int64)
    score[0, :] = -penalty * np.arange(m)
    score[:, 0] = -penalty * np.arange(n)
    match = (seq1[:, None] == seq2[None, :]).astype(np.int64) * 2 - 1
    for d in range(2, n + m - 1):
        i = np.arange(max(1, d - m + 1), min(n, d))
        j = d - i
        valid = (j >= 1) & (j < m)
        i, j = i[valid], j[valid]
        score[i, j] = np.maximum(
            score[i - 1, j - 1] + match[i - 1, j - 1],
            np.maximum(score[i - 1, j] - penalty, score[i, j - 1] - penalty),
        )
    return int(score[n - 1, m - 1])


@register_application
class Needle(Application):
    """Needleman-Wunsch algorithm."""

    name = "needle"
    pattern = "irregular"
    paper_input = "32k x 32k"

    PAPER_DIM = 32 * 1024

    def __init__(self, scale: float = 1.0, block: int = 256, penalty: int = 10,
                 seed: int = 3):
        super().__init__(scale)
        self.n = self.dim(self.PAPER_DIM, minimum=8)
        self.block = max(4, min(block, self.n))
        self.penalty = penalty
        self.seed = seed

    def working_set_bytes(self) -> int:
        return 2 * (self.n + 1) * (self.n + 1) * 4

    def setup(self, gh: GraceHopperSystem, mode: MemoryMode, materialize: bool):
        shape = ((self.n + 1), (self.n + 1))
        self.itemsets = self.buffer(
            gh, mode, "itemsets", np.int32, shape, materialize=materialize
        )
        self.reference = self.buffer(
            gh, mode, "reference", np.int32, shape, materialize=materialize
        )

    def cpu_init(self, gh: GraceHopperSystem, mode: MemoryMode) -> None:
        def fill():
            if self.itemsets.cpu_target.materialized:
                rng = np.random.default_rng(self.seed)
                self._seq1 = rng.integers(1, 5, size=self.n, dtype=np.int64)
                self._seq2 = rng.integers(1, 5, size=self.n, dtype=np.int64)
                its = self.itemsets.cpu_target.np
                its[:] = 0
                its[0, :] = -self.penalty * np.arange(self.n + 1)
                its[:, 0] = -self.penalty * np.arange(self.n + 1)
                ref = self.reference.cpu_target.np
                ref[1:, 1:] = (
                    self._seq1[:, None] == self._seq2[None, :]
                ).astype(np.int32) * 2 - 1

        # Rodinia zero-fills the itemsets (calloc-equivalent CPU touch)
        # and fully initialises the reference matrix on the CPU.
        self.chunked_cpu_init(
            gh,
            [self.itemsets.cpu_target, self.reference.cpu_target],
            compute=fill,
        )

    def _diagonal_pages(self, arr, d: int, nblocks: int) -> PageSet:
        """Pages touched by the anti-diagonal wave ``d`` of blocks.

        Each block covers a short row segment (``block * 4`` bytes) in each
        of its rows, so it touches one or two pages per row, scattered
        across distant rows — the irregular signature of needle.
        """
        i = np.arange(max(0, d - nblocks + 1), min(nblocks, d + 1))
        j = d - i
        cols = self.n + 1
        chunks = []
        for bi, bj in zip(i.tolist(), j.tolist()):
            r0, r1 = bi * self.block, min((bi + 1) * self.block, cols)
            c0, c1 = bj * self.block, min((bj + 1) * self.block, cols)
            r = np.arange(r0, r1, dtype=np.int64)
            first = (r * cols + c0) * 4 // arr.page_size
            last = (r * cols + (c1 - 1)) * 4 // arr.page_size
            chunks.append(first)
            chunks.append(last)
        pages = np.unique(np.concatenate(chunks))
        return PageSet.of(pages[pages < arr.n_pages])

    def compute(self, gh: GraceHopperSystem, mode: MemoryMode, result: AppResult):
        self.itemsets.h2d()
        self.reference.h2d()
        its = self.itemsets.gpu_target
        ref = self.reference.gpu_target
        materialized = its.materialized

        nblocks = -(-self.n // self.block)

        for d in range(2 * nblocks - 1):
            pages = self._diagonal_pages(its, d, nblocks)
            # Useful bytes of the wave spread over the touched pages; a
            # page only carries one block-row segment of useful data.
            wave_blocks = min(d + 1, nblocks, 2 * nblocks - 1 - d)
            wave_bytes = wave_blocks * self.block * self.block * 4
            frac = min(1.0, max(wave_bytes / (pages.count * its.page_size),
                                its.itemsize / its.page_size))
            t0 = gh.now
            gh.launch_kernel(
                f"needle-diag-{d}",
                [
                    # Within one page the touched block-row segment is
                    # contiguous; the irregularity is the page-level
                    # scatter across distant rows, not element scatter.
                    ArrayAccess.read(its, pages, fraction=frac),
                    ArrayAccess.read(ref, pages, fraction=frac),
                    ArrayAccess.write_(its, pages, fraction=frac),
                ],
                flops=6.0 * min(d + 1, nblocks) * self.block * self.block,
                compute=None,
            )
            result.iteration_times.append(gh.now - t0)

        if materialized:
            rng = np.random.default_rng(self.seed)
            seq1 = rng.integers(1, 5, size=self.n, dtype=np.int64)
            seq2 = rng.integers(1, 5, size=self.n, dtype=np.int64)
            final = needleman_wunsch_antidiagonal(seq1, seq2, self.penalty)
            flat = self.itemsets.gpu_target.np
            flat[self.n, self.n] = final
        self.itemsets.d2h()
        result.correctness["score"] = (
            int(self.itemsets.cpu_target.np[self.n, self.n])
            if materialized
            else None
        )

    def verify(self, result: AppResult) -> None:
        got = result.correctness.get("score")
        if got is None:
            return
        rng = np.random.default_rng(self.seed)
        seq1 = rng.integers(1, 5, size=self.n, dtype=np.int64)
        seq2 = rng.integers(1, 5, size=self.n, dtype=np.int64)
        expect = needleman_wunsch_reference(seq1, seq2, self.penalty)
        if got != expect:
            raise AssertionError(f"needle score {got} != reference {expect}")
