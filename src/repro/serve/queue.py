"""Bounded priority queue with admission control.

The service never queues unboundedly: a submission either gets a seat
(total capacity *and* its class's seat limit both have room) or is
rejected immediately with a machine-readable reason, so callers can shed
load upstream instead of timing out blind. Two job classes exist —
``interactive`` jobs always dequeue ahead of ``batch`` jobs, and the
per-class limits keep a batch sweep from starving interactive what-ifs
of queue seats.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any

#: Dequeue order: lower rank first. Unknown classes are rejected.
CLASS_RANK = {"interactive": 0, "batch": 1}

#: Reasons a submission can be turned away, as returned to clients.
REASON_QUEUE_FULL = "queue full"
REASON_CLASS_LIMIT = "class limit reached"
REASON_DRAINING = "service draining"
REASON_UNKNOWN_CLASS = "unknown job class"
REASON_UNKNOWN_EXPERIMENT = "unknown experiment"


class AdmissionError(RuntimeError):
    """A submission was rejected; ``reason`` says why."""

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(f"{reason}{f': {detail}' if detail else ''}")
        self.reason = reason
        self.detail = detail


class QueueClosed(RuntimeError):
    """``get()`` on a drained-and-empty queue (the scheduler's stop
    signal)."""


@dataclass
class Job:
    """One accepted what-if request (possibly shared by many waiters).

    Identical concurrent submissions coalesce onto a single ``Job``: the
    scheduler keeps one in-flight entry per ``key`` and every duplicate
    submission just bumps ``waiters`` and shares ``future``.
    """

    exp_id: str
    kwargs: dict[str, Any]
    key: str
    job_class: str = "batch"
    timeout: float | None = None
    retries: int = 0
    job_id: str = ""
    future: asyncio.Future = field(repr=False, default=None)  # type: ignore[assignment]
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: float | None = None
    attempts: int = 0
    waiters: int = 1
    cancelled: bool = False

    @property
    def queue_wait(self) -> float:
        return (self.started_at or time.monotonic()) - self.submitted_at


class BoundedPriorityQueue:
    """Priority queue with hard capacity and per-class seat limits.

    ``put_nowait`` applies admission control (raises
    :class:`AdmissionError`); ``get`` awaits the highest-priority job and
    raises :class:`QueueClosed` once the queue is closed *and* empty.
    """

    def __init__(
        self,
        capacity: int = 16,
        class_limits: dict[str, int] | None = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.class_limits = dict(class_limits or {})
        unknown = set(self.class_limits) - set(CLASS_RANK)
        if unknown:
            raise ValueError(f"unknown job class(es) in limits: {sorted(unknown)}")
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._by_class: dict[str, int] = {}
        self._closed = False
        self._not_empty = asyncio.Event()

    def __len__(self) -> int:
        return len(self._heap)

    def depth(self) -> int:
        return len(self._heap)

    def depth_by_class(self) -> dict[str, int]:
        return dict(self._by_class)

    @property
    def closed(self) -> bool:
        return self._closed

    def put_nowait(self, job: Job) -> None:
        """Admit ``job`` or raise :class:`AdmissionError` with a reason."""
        if self._closed:
            raise AdmissionError(REASON_DRAINING)
        if job.job_class not in CLASS_RANK:
            raise AdmissionError(REASON_UNKNOWN_CLASS, job.job_class)
        if len(self._heap) >= self.capacity:
            raise AdmissionError(
                REASON_QUEUE_FULL, f"{len(self._heap)}/{self.capacity} queued"
            )
        limit = self.class_limits.get(job.job_class)
        in_class = self._by_class.get(job.job_class, 0)
        if limit is not None and in_class >= limit:
            raise AdmissionError(
                REASON_CLASS_LIMIT,
                f"{in_class}/{limit} {job.job_class} jobs queued",
            )
        heapq.heappush(
            self._heap, (CLASS_RANK[job.job_class], next(self._seq), job)
        )
        self._by_class[job.job_class] = in_class + 1
        self._not_empty.set()

    async def get(self) -> Job:
        """Await the next job by (class rank, FIFO within class)."""
        while not self._heap:
            if self._closed:
                raise QueueClosed
            self._not_empty.clear()
            await self._not_empty.wait()
        _, _, job = heapq.heappop(self._heap)
        self._by_class[job.job_class] -= 1
        return job

    def close(self) -> None:
        """Stop admitting; wake any ``get()`` waiter so it can observe
        the drain."""
        self._closed = True
        self._not_empty.set()
