"""Supervised worker processes for simulation jobs.

A :class:`WorkerProcess` owns one child process running a job loop over
a pipe; the parent can bound how long it waits for a reply and, on a
hang or crash, kill and respawn the child without losing the rest of the
pool. :class:`SupervisedWorkerPool` layers acquisition, retry, and
restart accounting on top; both the asyncio service scheduler and the
synchronous ``run_experiments_parallel(timeout=, retries=)`` path drive
it (the latter via threads).

The code a worker runs is named by a ``"module:function"`` spec resolved
*in the child*, so tests and demos can substitute their own job body;
the default runner executes a registry experiment and returns it in the
result cache's serialised form. The default runner also honours two
reserved fault-injection kwargs (stripped before the experiment sees
them, but part of the cache key, so injected runs never pollute real
entries): ``_serve_hang_s`` sleeps that many seconds first (a hung
job), and ``_serve_hang_once`` names a flag file — if it exists it is
removed and the job hangs, so the first attempt times out and the retry
succeeds.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import queue as stdlib_queue
import time
import warnings

#: The production job body: run a registry experiment, serialise it.
DEFAULT_RUNNER = "repro.serve.workers:default_job_runner"

_HANG_SECONDS = 3600.0  # "forever" at service timescales


class WorkerCrashed(RuntimeError):
    """The child died (signal, ``os._exit``, OOM) before replying."""

    def __init__(self, name: str, exitcode: int | None):
        super().__init__(f"{name} crashed (exitcode={exitcode})")
        self.exitcode = exitcode


class WorkerTimeout(TimeoutError):
    """No reply within the job's deadline; the child may be hung."""


class JobError(RuntimeError):
    """The job body raised inside the worker (deterministic failure —
    not retried)."""


class JobFailed(RuntimeError):
    """A job exhausted its retry budget (or the pool shut down)."""

    def __init__(self, exp_id: str, reason: str, attempts: int = 0):
        super().__init__(f"{exp_id}: {reason} (after {attempts} attempt(s))")
        self.exp_id = exp_id
        self.reason = reason
        self.attempts = attempts


def _resolve_runner(spec: str):
    module, _, attr = spec.partition(":")
    return getattr(importlib.import_module(module), attr)


def default_job_runner(exp_id: str, kwargs: dict) -> dict:
    """Run one registry experiment; returns the cache-serialised payload."""
    from ..bench.experiments import run_experiment
    from ..bench.runner import _serialize

    kwargs = dict(kwargs)
    hang_s = kwargs.pop("_serve_hang_s", 0)
    hang_once = kwargs.pop("_serve_hang_once", None)
    if hang_once and os.path.exists(hang_once):
        os.unlink(hang_once)
        time.sleep(_HANG_SECONDS)
    if hang_s:
        time.sleep(hang_s)
    return _serialize(run_experiment(exp_id, **kwargs))


def _worker_main(conn, runner_spec: str, sanitize: bool = False) -> None:
    """Child-side loop: recv ``(exp_id, kwargs)``, send a reply dict."""
    if sanitize:
        # Pin the parent's sanitize decision in the child explicitly, so
        # a pool created under REPRO_SANITIZE=1 keeps checking even if
        # the environment changes later (and regardless of start method).
        os.environ["REPRO_SANITIZE"] = "1"
    runner = _resolve_runner(runner_spec)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if msg is None:
            break
        exp_id, kwargs = msg
        try:
            reply = {"ok": True, "payload": runner(exp_id, kwargs)}
        except KeyboardInterrupt:
            break
        except BaseException as exc:  # noqa: BLE001 — report, don't die
            reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break


def _mp_context():
    # fork (where available) inherits the parent's imported modules and
    # any test monkeypatching; spawn needs the runner spec importable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class WorkerProcess:
    """One supervised child process with a request/reply pipe."""

    def __init__(
        self,
        runner_spec: str = DEFAULT_RUNNER,
        name: str = "worker",
        *,
        sanitize: bool | None = None,
    ):
        from ..check.sanitizer import sanitize_requested

        self.runner_spec = runner_spec
        self.name = name
        self.restarts = 0
        #: Decided once at pool/worker creation; survives restarts.
        self.sanitize = sanitize_requested() if sanitize is None else sanitize
        self._ctx = _mp_context()
        self._spawn()

    def _spawn(self) -> None:
        self._conn, child_conn = self._ctx.Pipe()
        with warnings.catch_warnings():
            # Restarts fork from a pool thread; the 3.12+ multithreaded
            # fork DeprecationWarning is noise for this tiny child.
            warnings.simplefilter("ignore", DeprecationWarning)
            self._proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, self.runner_spec, self.sanitize),
                name=self.name,
                daemon=True,
            )
            self._proc.start()
        child_conn.close()

    @property
    def pid(self) -> int | None:
        return self._proc.pid

    def is_alive(self) -> bool:
        return self._proc.is_alive()

    def run(self, exp_id: str, kwargs: dict, timeout: float | None = None) -> dict:
        """Run one job to completion; raise :class:`WorkerTimeout` /
        :class:`WorkerCrashed` / :class:`JobError` on the three failure
        modes. After a timeout or crash the caller must :meth:`restart`
        before reusing this worker."""
        self._conn.send((exp_id, dict(kwargs)))
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            step = 0.05
            if deadline is not None:
                step = min(step, max(0.0, deadline - time.monotonic()))
            try:
                ready = self._conn.poll(step)
            except (BrokenPipeError, OSError):
                raise WorkerCrashed(self.name, self._proc.exitcode) from None
            if ready:
                try:
                    reply = self._conn.recv()
                except (EOFError, OSError):
                    raise WorkerCrashed(self.name, self._proc.exitcode) from None
                if reply["ok"]:
                    return reply["payload"]
                raise JobError(reply["error"])
            if not self._proc.is_alive():
                raise WorkerCrashed(self.name, self._proc.exitcode)
            if deadline is not None and time.monotonic() >= deadline:
                raise WorkerTimeout(
                    f"{self.name}: no reply for {exp_id!r} within {timeout}s"
                )

    def restart(self) -> None:
        """Kill the child (it may be hung mid-job) and spawn a fresh one."""
        self.kill()
        self.restarts += 1
        self._spawn()

    def kill(self) -> None:
        if self._proc.is_alive():
            self._proc.kill()
        self._proc.join(timeout=5)
        self._conn.close()

    def close(self) -> None:
        """Polite shutdown: ask the loop to exit, then reap."""
        try:
            self._conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self._proc.join(timeout=2)
        if self._proc.is_alive():
            self._proc.kill()
            self._proc.join(timeout=5)
        self._conn.close()


class SupervisedWorkerPool:
    """A fixed-size pool of :class:`WorkerProcess` with retry/restart.

    Thread-safe: workers are handed out through a queue, so the asyncio
    scheduler (via ``asyncio.to_thread``) and the parallel runner (via a
    thread pool) can both drive :meth:`run_with_retry` concurrently.
    """

    def __init__(
        self,
        n_workers: int,
        runner_spec: str = DEFAULT_RUNNER,
        *,
        sanitize: bool | None = None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.workers = [
            WorkerProcess(runner_spec, name=f"repro-serve-{i}", sanitize=sanitize)
            for i in range(n_workers)
        ]
        self._free: stdlib_queue.Queue[WorkerProcess] = stdlib_queue.Queue()
        for worker in self.workers:
            self._free.put(worker)
        self._closing = False

    def __len__(self) -> int:
        return len(self.workers)

    @property
    def restarts(self) -> int:
        return sum(w.restarts for w in self.workers)

    def run_with_retry(
        self,
        exp_id: str,
        kwargs: dict,
        *,
        timeout: float | None = None,
        retries: int = 0,
        on_retry=None,
        timeline=None,
        job_id: str = "",
    ) -> dict:
        """Run a job, retrying timeouts and crashes up to ``retries``
        times (restarting the worker each time). Job-body exceptions are
        deterministic and fail immediately. ``on_retry(exp_id, attempt,
        exc)`` fires before each retry (metrics hook). ``timeline``
        (a wall-clock :class:`repro.profiling.Timeline`) gets one
        ``worker-exec`` span per attempt, tagged with the worker's OS
        pid and correlated by ``job_id``."""
        last: Exception | None = None
        attempts = 0
        for attempt in range(retries + 1):
            if self._closing:
                raise JobFailed(exp_id, "pool shutting down", attempts)
            worker = self._free.get()
            attempts += 1
            exec_start = time.monotonic()
            exec_pid = worker.pid  # the attempt's child (restart changes it)
            outcome = "completed"
            try:
                return worker.run(exp_id, kwargs, timeout=timeout)
            except (WorkerTimeout, WorkerCrashed) as exc:
                last = exc
                outcome = "timeout" if isinstance(exc, WorkerTimeout) else "crash"
                if not self._closing:
                    worker.restart()
                if on_retry is not None and attempt < retries:
                    on_retry(exp_id, attempt, exc)
            except JobError as exc:
                outcome = "error"
                raise JobFailed(exp_id, str(exc), attempts) from exc
            finally:
                if timeline is not None:
                    timeline.complete(
                        "worker-exec", exec_start,
                        time.monotonic() - exec_start,
                        cat="serve", track=f"serve/{worker.name}",
                        job_id=job_id, exp_id=exp_id, attempt=attempt,
                        worker=worker.name, worker_pid=exec_pid,
                        outcome=outcome,
                    )
                self._free.put(worker)
        kind = "timed out" if isinstance(last, WorkerTimeout) else "crashed"
        raise JobFailed(exp_id, f"{kind}: {last}", attempts) from last

    def shutdown_now(self) -> None:
        """Abort: kill every child so blocked ``run()`` calls raise and
        their threads unwind (used on KeyboardInterrupt/SIGTERM)."""
        self._closing = True
        for worker in self.workers:
            worker.kill()

    def close(self) -> None:
        self._closing = True
        for worker in self.workers:
            worker.close()
