"""Concurrent what-if simulation serving.

The paper's value is *what-if* exploration — sweeping memory modes, page
sizes, and oversubscription ratios across applications. This package
turns the one-shot experiment registry into a long-lived service:
submissions pass admission control into a bounded priority queue,
identical concurrent requests coalesce onto one execution, completed
ones are answered from the PR-1 result cache, and a supervised
worker-process pool runs the rest with per-job timeouts, bounded
retries, and crash restarts — all observable through a JSON metrics
snapshot. ``repro-bench serve`` / ``repro-bench submit`` expose it over
TCP.
"""

from .client import ServeClient
from .metrics import ServiceMetrics
from .queue import (
    AdmissionError,
    BoundedPriorityQueue,
    Job,
    QueueClosed,
)
from .scheduler import Scheduler
from .service import JobHandle, ServiceConfig, SimulationService, serve_tcp
from .workers import (
    DEFAULT_RUNNER,
    JobError,
    JobFailed,
    SupervisedWorkerPool,
    WorkerCrashed,
    WorkerProcess,
    WorkerTimeout,
)

__all__ = [
    "AdmissionError",
    "BoundedPriorityQueue",
    "DEFAULT_RUNNER",
    "Job",
    "JobError",
    "JobFailed",
    "JobHandle",
    "QueueClosed",
    "Scheduler",
    "ServeClient",
    "ServiceConfig",
    "ServiceMetrics",
    "SimulationService",
    "SupervisedWorkerPool",
    "WorkerCrashed",
    "WorkerProcess",
    "WorkerTimeout",
    "serve_tcp",
]
