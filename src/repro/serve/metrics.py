"""Service observability: counters, latency histograms, log lines.

One :class:`ServiceMetrics` instance per service. Counters cover the
whole request lifecycle (submitted → accepted/rejected/coalesced/cached
→ executed → completed/failed), latency is tracked as three
:class:`~repro.profiling.counters.Histogram` distributions (queue wait,
execution, end-to-end), and gauges (queue depth, in-flight, worker
restarts) are read through callbacks so a snapshot always reflects live
state. ``snapshot()`` is the JSON surface the TCP ``metrics`` op and
``repro-bench submit --metrics`` expose; ``log_line()`` is the periodic
structured log record.
"""

from __future__ import annotations

import json
import logging
import time
from typing import Callable

from ..profiling.counters import Histogram

logger = logging.getLogger("repro.serve")


class ServiceMetrics:
    """Lifecycle counters + latency histograms + live gauges."""

    def __init__(self):
        self.started_at = time.monotonic()
        self.submitted = 0  # every submission attempt
        self.accepted = 0  # got a queue seat
        self.rejected: dict[str, int] = {}  # reason -> count
        self.coalesced = 0  # attached to an identical in-flight job
        self.cache_hits = 0
        self.cache_misses = 0
        self.executed = 0  # jobs dispatched to a worker
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.timeouts = 0  # individual attempt timeouts
        self.retries = 0
        # Epoch-checkpoint reuse reported back by what-if replay jobs
        # (see repro.sim.whatif): how much simulation the service skipped.
        self.checkpoint_hits = 0
        self.checkpoint_misses = 0
        self.checkpoint_stores = 0
        self.checkpoint_restored_bytes = 0
        self.checkpoint_suffix_batches = 0
        self.queue_wait = Histogram()
        self.exec_latency = Histogram()
        self.total_latency = Histogram()
        # Gauge callbacks, wired by the service at start.
        self.queue_depth_fn: Callable[[], int] = lambda: 0
        self.queue_by_class_fn: Callable[[], dict] = dict
        self.inflight_fn: Callable[[], int] = lambda: 0
        self.worker_restarts_fn: Callable[[], int] = lambda: 0
        self.workers_fn: Callable[[], int] = lambda: 0

    def reject(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def note_checkpoint(self, meta: dict) -> None:
        """Fold one job's checkpoint-store telemetry into the service
        totals (the scheduler strips it from the job payload)."""
        self.checkpoint_hits += int(meta.get("hits", 0))
        self.checkpoint_misses += int(meta.get("misses", 0))
        self.checkpoint_stores += int(meta.get("stores", 0))
        self.checkpoint_restored_bytes += int(meta.get("restored_bytes", 0))
        self.checkpoint_suffix_batches += int(meta.get("batches_replayed", 0))

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    def cache_hit_ratio(self) -> float:
        looked = self.cache_hits + self.cache_misses
        return self.cache_hits / looked if looked else 0.0

    def arrival_rate(self) -> float:
        """Observed arrival rate (submissions/s over the uptime) — the
        λ the capacity planner's queueing layer consumes."""
        uptime = time.monotonic() - self.started_at
        return self.submitted / uptime if uptime > 0 else 0.0

    def service_time_moments(self) -> tuple[float, float]:
        """``(mean_s, second_moment_s2)`` of executed-job service time,
        from the execution-latency histogram's exact accumulators —
        with :meth:`arrival_rate` this is everything an M/G/c estimate
        needs from a live service."""
        return self.exec_latency.mean, self.exec_latency.second_moment()

    def snapshot(self) -> dict:
        """JSON-able point-in-time view of the whole service."""
        return {
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "queue": {
                "depth": self.queue_depth_fn(),
                "by_class": self.queue_by_class_fn(),
            },
            "in_flight": self.inflight_fn(),
            "workers": {
                "count": self.workers_fn(),
                "restarts": self.worker_restarts_fn(),
            },
            "jobs": {
                "submitted": self.submitted,
                "accepted": self.accepted,
                "rejected": dict(self.rejected),
                "rejected_total": self.rejected_total,
                "coalesced": self.coalesced,
                "executed": self.executed,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "timeouts": self.timeouts,
                "retries": self.retries,
            },
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_ratio": round(self.cache_hit_ratio(), 4),
            },
            "checkpoint": {
                "hits": self.checkpoint_hits,
                "misses": self.checkpoint_misses,
                "stores": self.checkpoint_stores,
                "restored_bytes": self.checkpoint_restored_bytes,
                "suffix_batches": self.checkpoint_suffix_batches,
            },
            "latency_s": {
                "queue_wait": self.queue_wait.snapshot(),
                "execution": self.exec_latency.snapshot(),
                "total": self.total_latency.snapshot(),
            },
            "rates": {
                "arrival_rps": round(self.arrival_rate(), 3),
                "service_mean_s": round(self.exec_latency.mean, 6),
                "service_m2_s2": round(
                    self.exec_latency.second_moment(), 9
                ),
                "service_scv": round(self.exec_latency.scv(), 4),
            },
        }

    def log_line(self) -> str:
        """One structured (JSON) log record; also emitted via logging."""
        snap = self.snapshot()
        line = json.dumps(
            {
                "event": "serve.metrics",
                "uptime_s": snap["uptime_s"],
                "queue_depth": snap["queue"]["depth"],
                "in_flight": snap["in_flight"],
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected_total,
                "coalesced": self.coalesced,
                "cache_hit_ratio": snap["cache"]["hit_ratio"],
                "worker_restarts": snap["workers"]["restarts"],
                "arrival_rps": snap["rates"]["arrival_rps"],
                "service_mean_s": snap["rates"]["service_mean_s"],
                "p50_total_s": snap["latency_s"]["total"]["p50"],
                "p99_total_s": snap["latency_s"]["total"]["p99"],
                "p999_total_s": snap["latency_s"]["total"]["p999"],
            },
            sort_keys=True,
        )
        logger.info(line)
        return line
