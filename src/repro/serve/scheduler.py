"""Scheduler: queue → (coalesce, cache) → supervised workers.

The scheduler's run loop pops jobs off the bounded queue in priority
order and dispatches each to the worker pool under a slot semaphore, so
at most ``n_workers`` jobs execute at once and queue depth stays an
honest backlog measure. Before dispatch it consults the PR-1
:class:`~repro.bench.runner.ResultCache` (same fingerprint as
``repro-bench run``), and after success it writes back, so a completed
what-if never runs twice — coalescing handles the *concurrent*
duplicates, the cache handles the *sequential* ones.
"""

from __future__ import annotations

import asyncio
import time

from ..bench.runner import ResultCache, _deserialize
from .metrics import ServiceMetrics, logger
from .queue import BoundedPriorityQueue, Job, QueueClosed
from .workers import JobFailed, SupervisedWorkerPool, WorkerTimeout


class Scheduler:
    """Pulls jobs from the queue and runs them on the worker pool."""

    def __init__(
        self,
        queue: BoundedPriorityQueue,
        pool: SupervisedWorkerPool,
        metrics: ServiceMetrics,
        cache: ResultCache | None = None,
        timeline=None,
    ):
        self.queue = queue
        self.pool = pool
        self.metrics = metrics
        self.cache = cache
        #: Optional wall-clock :class:`repro.profiling.Timeline`; every
        #: job then leaves queue-wait / dispatch / worker-exec spans
        #: correlated by ``job_id``.
        self.timeline = timeline
        #: coalescing map: fingerprint -> accepted-but-unfinished Job
        self.inflight: dict[str, Job] = {}
        self._slots = asyncio.Semaphore(len(pool))
        self._tasks: set[asyncio.Task] = set()
        self._loop_task: asyncio.Task | None = None

    def start(self) -> None:
        self._loop_task = asyncio.create_task(self._run(), name="serve-scheduler")

    async def _run(self) -> None:
        while True:
            try:
                job = await self.queue.get()
            except QueueClosed:
                break
            if job.cancelled:
                self._finish_cancelled(job)
                continue
            await self._slots.acquire()
            task = asyncio.create_task(
                self._execute(job), name=f"serve-job-{job.job_id}"
            )
            self._tasks.add(task)
            task.add_done_callback(self._on_task_done)

    def _on_task_done(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        self._slots.release()
        if not task.cancelled() and task.exception() is not None:
            logger.error("serve-job task died: %r", task.exception())

    def _finish_cancelled(self, job: Job) -> None:
        self.inflight.pop(job.key, None)
        self.metrics.cancelled += 1
        if not job.future.done():
            job.future.cancel()

    async def _execute(self, job: Job) -> None:
        job.started_at = time.monotonic()
        self.metrics.queue_wait.record(job.queue_wait)
        if self.timeline is not None:
            self.timeline.complete(
                "queue-wait", job.submitted_at, job.queue_wait,
                cat="serve", track="serve/queue",
                job_id=job.job_id, exp_id=job.exp_id,
                job_class=job.job_class,
            )

        # Sequential dedup: an identical job may have completed (and been
        # cached) while this one sat in the queue.
        if self.cache is not None:
            hit = await asyncio.to_thread(self.cache.get, job.exp_id, **job.kwargs)
            if hit is not None:
                self.metrics.cache_hits += 1
                self._resolve(job, hit)
                return
            self.metrics.cache_misses += 1

        self.metrics.executed += 1

        def on_retry(exp_id: str, attempt: int, exc: Exception) -> None:
            # Runs on the pool thread; int bumps are atomic under the GIL.
            if isinstance(exc, WorkerTimeout):
                self.metrics.timeouts += 1
            self.metrics.retries += 1
            job.attempts = attempt + 1
            logger.warning(
                "retrying %s (%s, attempt %d): %s",
                job.job_id, exp_id, attempt + 2, exc,
            )

        dispatch_start = job.started_at
        try:
            payload = await asyncio.to_thread(
                self.pool.run_with_retry,
                job.exp_id,
                job.kwargs,
                timeout=job.timeout,
                retries=job.retries,
                on_retry=on_retry,
                timeline=self.timeline,
                job_id=job.job_id,
            )
        except JobFailed as exc:
            if "timed out" in exc.reason:
                self.metrics.timeouts += 1  # the final, non-retried attempt
            job.attempts = exc.attempts
            self._dispatch_span(job, dispatch_start, "failed")
            self._fail(job, exc)
            return
        self._dispatch_span(job, dispatch_start, "completed")
        if isinstance(payload, dict):
            # Side-channel from checkpoint-aware runners (the what-if
            # replayer): stripped before deserialisation so cached
            # payloads stay pure results.
            ckpt_meta = payload.pop("_checkpoint", None)
            if ckpt_meta:
                self.metrics.note_checkpoint(ckpt_meta)
        result = _deserialize(payload)
        if self.cache is not None:
            await asyncio.to_thread(self.cache.put, result, **job.kwargs)
        self._resolve(job, result)

    def _dispatch_span(self, job: Job, start: float, outcome: str) -> None:
        if self.timeline is not None:
            self.timeline.complete(
                "dispatch", start, time.monotonic() - start,
                cat="serve", track="serve/dispatch",
                job_id=job.job_id, exp_id=job.exp_id,
                attempts=job.attempts, outcome=outcome,
            )

    def _resolve(self, job: Job, result) -> None:
        self.inflight.pop(job.key, None)
        self.metrics.completed += 1
        now = time.monotonic()
        if job.started_at is not None:
            self.metrics.exec_latency.record(now - job.started_at)
        self.metrics.total_latency.record(now - job.submitted_at)
        if not job.future.done():
            job.future.set_result(result)

    def _fail(self, job: Job, exc: Exception) -> None:
        self.inflight.pop(job.key, None)
        self.metrics.failed += 1
        self.metrics.total_latency.record(time.monotonic() - job.submitted_at)
        if not job.future.done():
            job.future.set_exception(exc)

    async def drain(self) -> None:
        """Close the queue, run every accepted job to completion, and
        wait for the loop and all dispatch tasks to finish."""
        self.queue.close()
        if self._loop_task is not None:
            await self._loop_task
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
