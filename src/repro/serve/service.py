"""`repro.serve` service facade and TCP endpoint.

:class:`SimulationService` is the in-process API: ``submit()`` applies
admission control and coalescing and returns a :class:`JobHandle` whose
``result()`` awaits the shared outcome; ``drain()`` stops admitting and
delivers every accepted job; ``metrics_snapshot()`` is the JSON
observability surface. ``serve_tcp`` wraps a service in a
newline-delimited-JSON protocol (ops: ``submit``, ``metrics``, ``ping``,
``shutdown``) for the ``repro-bench serve`` / ``submit`` CLI pair.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import signal
from dataclasses import dataclass, field

from ..bench.harness import ExperimentResult
from ..bench.runner import ResultCache, _serialize, cache_key
from .metrics import ServiceMetrics, logger
from .queue import (
    REASON_UNKNOWN_EXPERIMENT,
    AdmissionError,
    BoundedPriorityQueue,
    Job,
)
from .scheduler import Scheduler
from .workers import DEFAULT_RUNNER, SupervisedWorkerPool

_UNSET = object()


@dataclass
class ServiceConfig:
    """Tunables for one service instance."""

    workers: int = 2
    capacity: int = 16
    class_limits: dict[str, int] | None = None
    default_timeout: float | None = None
    default_retries: int = 0
    runner_spec: str = DEFAULT_RUNNER
    cache: ResultCache | None = None
    #: accepted experiment ids (None = accept anything; the CLI passes
    #: the registry so bogus ids are rejected at admission, not by a
    #: worker)
    known_experiments: frozenset[str] | None = None
    metrics_interval: float = 10.0
    #: Optional explicit wall-clock :class:`repro.profiling.Timeline`
    #: for queue-wait/dispatch/worker-exec spans. When left ``None`` one
    #: is still created if timelines are requested globally
    #: (``REPRO_TIMELINE=1`` or an active ``TimelineSession``).
    timeline: object | None = None


@dataclass
class JobHandle:
    """Client-side view of one submission."""

    job_id: str
    exp_id: str
    key: str
    future: asyncio.Future = field(repr=False)
    coalesced: bool = False  # shared an identical in-flight job
    cached: bool = False  # served from the result cache at submit

    async def result(self, timeout: float | None = None) -> ExperimentResult:
        return await asyncio.wait_for(asyncio.shield(self.future), timeout)

    def done(self) -> bool:
        return self.future.done()


class SimulationService:
    """Concurrent what-if simulation service (asyncio).

    Lifecycle: ``await start()`` → ``submit()`` / ``cancel()`` →
    ``await drain()`` (delivers all accepted work) → ``await stop()``.
    Also usable as an async context manager.
    """

    def __init__(self, config: ServiceConfig | None = None, **overrides):
        self.config = config or ServiceConfig(**overrides)
        self.metrics = ServiceMetrics()
        if self.config.timeline is not None:
            self.timeline = self.config.timeline
        else:
            import time as _time

            from ..profiling.timeline import maybe_timeline

            self.timeline = maybe_timeline(
                None, _time.monotonic, name="serve", tag_os_ids=True
            )
        self.queue = BoundedPriorityQueue(
            self.config.capacity, self.config.class_limits
        )
        self.pool: SupervisedWorkerPool | None = None
        self.scheduler: Scheduler | None = None
        self._jobs: dict[str, Job] = {}  # job_id -> job, for cancel()
        self._next_id = 0
        self._metrics_task: asyncio.Task | None = None
        self._started = False

    async def __aenter__(self) -> "SimulationService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    async def start(self) -> None:
        if self._started:
            return
        cfg = self.config
        self.pool = await asyncio.to_thread(
            SupervisedWorkerPool, cfg.workers, cfg.runner_spec
        )
        scheduler = Scheduler(
            self.queue, self.pool, self.metrics, cfg.cache,
            timeline=self.timeline,
        )
        self.scheduler = scheduler
        pool = self.pool  # gauges must survive stop() clearing self.pool
        m = self.metrics
        m.queue_depth_fn = self.queue.depth
        m.queue_by_class_fn = self.queue.depth_by_class
        m.inflight_fn = lambda: len(scheduler.inflight)
        m.worker_restarts_fn = lambda: pool.restarts
        m.workers_fn = lambda: len(pool)
        self.scheduler.start()
        if cfg.metrics_interval:
            self._metrics_task = asyncio.create_task(
                self._metrics_loop(), name="serve-metrics"
            )
        self._started = True
        logger.info(
            "serve: started (workers=%d capacity=%d cache=%s)",
            cfg.workers, cfg.capacity,
            getattr(cfg.cache, "root", None),
        )

    async def _metrics_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.metrics_interval)
            self.metrics.log_line()

    # ------------------------------------------------------------------
    # Submission path
    # ------------------------------------------------------------------

    def submit(
        self,
        exp_id: str,
        kwargs: dict | None = None,
        *,
        job_class: str = "batch",
        timeout: float | None = _UNSET,  # type: ignore[assignment]
        retries: int = _UNSET,  # type: ignore[assignment]
    ) -> JobHandle:
        """Admit one what-if job; raises :class:`AdmissionError` when the
        service cannot take it (queue full, class limit, draining,
        unknown experiment/class). Identical in-flight submissions
        coalesce onto one execution; previously completed ones are
        answered from the result cache."""
        assert self._started, "call await service.start() first"
        cfg = self.config
        kwargs = dict(kwargs or {})
        self.metrics.submitted += 1
        if (
            cfg.known_experiments is not None
            and exp_id not in cfg.known_experiments
        ):
            self.metrics.reject(REASON_UNKNOWN_EXPERIMENT)
            raise AdmissionError(REASON_UNKNOWN_EXPERIMENT, exp_id)
        key = cache_key(exp_id, kwargs)

        inflight = self.scheduler.inflight.get(key)
        if inflight is not None and not inflight.cancelled:
            inflight.waiters += 1
            self.metrics.coalesced += 1
            return JobHandle(
                inflight.job_id, exp_id, key, inflight.future, coalesced=True
            )

        if cfg.cache is not None:
            hit = cfg.cache.get(exp_id, **kwargs)
            if hit is not None:
                self.metrics.cache_hits += 1
                future = asyncio.get_running_loop().create_future()
                future.set_result(hit)
                return JobHandle("cached", exp_id, key, future, cached=True)

        self._next_id += 1
        job = Job(
            exp_id=exp_id,
            kwargs=kwargs,
            key=key,
            job_class=job_class,
            timeout=cfg.default_timeout if timeout is _UNSET else timeout,
            retries=cfg.default_retries if retries is _UNSET else retries,
            job_id=f"job-{self._next_id}",
            future=asyncio.get_running_loop().create_future(),
        )
        try:
            self.queue.put_nowait(job)
        except AdmissionError as exc:
            self.metrics.reject(exc.reason)
            raise
        self.metrics.accepted += 1
        self.scheduler.inflight[key] = job
        self._jobs[job.job_id] = job
        return JobHandle(job.job_id, exp_id, key, job.future)

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job (in-flight executions are left to
        finish — their result still feeds the cache and any co-waiters).
        Returns True if the job was marked cancelled."""
        job = self._jobs.get(job_id)
        if job is None or job.started_at is not None or job.future.done():
            return False
        job.cancelled = True
        return True

    def metrics_snapshot(self) -> dict:
        return self.metrics.snapshot()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def drain(self) -> None:
        """Stop admitting (new submissions are rejected with
        ``service draining``) and run every accepted job to completion."""
        if self.scheduler is not None:
            await self.scheduler.drain()

    async def stop(self) -> None:
        if self._metrics_task is not None:
            self._metrics_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._metrics_task
            self._metrics_task = None
        if self.pool is not None:
            await asyncio.to_thread(self.pool.close)
            self.pool = None
        self._started = False

    async def shutdown(self) -> None:
        """Graceful: drain accepted work, stop workers, log final
        metrics."""
        await self.drain()
        await self.stop()
        logger.info("serve: final %s", self.metrics.log_line())


# ----------------------------------------------------------------------
# TCP endpoint (newline-delimited JSON)
# ----------------------------------------------------------------------


async def _handle_request(service: SimulationService, request: dict) -> dict:
    op = request.get("op")
    if op == "ping":
        return {"ok": True, "op": "ping"}
    if op == "metrics":
        return {"ok": True, "metrics": service.metrics_snapshot()}
    if op == "submit":
        try:
            handle = service.submit(
                request["exp_id"],
                request.get("kwargs") or {},
                job_class=request.get("job_class", "batch"),
                timeout=request.get("timeout", _UNSET),
                retries=request.get("retries", _UNSET),
            )
        except AdmissionError as exc:
            return {
                "ok": False,
                "rejected": True,
                "reason": exc.reason,
                "detail": exc.detail,
            }
        except KeyError as exc:
            return {"ok": False, "error": f"missing field {exc}"}
        response = {
            "ok": True,
            "job_id": handle.job_id,
            "coalesced": handle.coalesced,
            "cached": handle.cached,
        }
        if request.get("wait", True):
            try:
                result = await handle.result(request.get("wait_timeout"))
            except asyncio.TimeoutError:
                return {**response, "ok": False, "error": "wait timed out"}
            except Exception as exc:  # noqa: BLE001 — report job failure
                return {**response, "ok": False, "error": str(exc)}
            response["result"] = _serialize(result)
        return response
    return {"ok": False, "error": f"unknown op {op!r}"}


async def serve_tcp(
    service: SimulationService,
    host: str = "127.0.0.1",
    port: int = 8642,
    on_ready=None,
) -> None:
    """Serve until a ``shutdown`` op (or cancellation); drains first.
    ``on_ready(host, port)`` fires once the socket is bound (pass
    ``port=0`` to let the OS pick)."""
    done = asyncio.Event()

    async def on_connection(reader, writer):
        # Requests carrying an ``id`` are answered concurrently (the
        # reply echoes the id, and ordering is no longer guaranteed), so
        # one connection can pipeline many in-flight submits — the
        # cluster gateway's replica links depend on this. Requests
        # without an id keep the original strict request/reply order.
        write_lock = asyncio.Lock()
        pipelined: set[asyncio.Task] = set()

        async def send(response: dict) -> None:
            async with write_lock:
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()

        async def respond(request: dict) -> None:
            response = await _handle_request(service, request)
            response["id"] = request["id"]
            with contextlib.suppress(ConnectionError, OSError):
                await send(response)

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    response = {"ok": False, "error": f"bad json: {exc}"}
                else:
                    if request.get("op") == "shutdown":
                        done.set()
                        response = {"ok": True, "op": "shutdown"}
                    elif request.get("id") is not None:
                        task = asyncio.create_task(respond(request))
                        pipelined.add(task)
                        task.add_done_callback(pipelined.discard)
                        continue
                    else:
                        response = await _handle_request(service, request)
                await send(response)
                if done.is_set():
                    break
        finally:
            for task in pipelined:
                task.cancel()
            if pipelined:
                await asyncio.gather(*pipelined, return_exceptions=True)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    server = await asyncio.start_server(on_connection, host, port)
    addr = server.sockets[0].getsockname()
    logger.info("serve: listening on %s:%s", addr[0], addr[1])
    print(f"repro-serve listening on {addr[0]}:{addr[1]}", flush=True)
    if on_ready is not None:
        on_ready(addr[0], addr[1])
    try:
        await done.wait()
    finally:
        server.close()
        await server.wait_closed()
        await service.shutdown()


def main_serve(argv: list[str] | None = None) -> int:
    """``repro-bench serve`` entry point."""
    import argparse

    from ..bench.experiments import experiment_ids

    parser = argparse.ArgumentParser(
        prog="repro-bench serve",
        description="Serve what-if simulation jobs over TCP (JSON lines); "
        "pair with 'repro-bench submit'.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument(
        "--workers", type=int, default=2, help="worker processes (default 2)"
    )
    parser.add_argument(
        "--capacity", type=int, default=16,
        help="queue capacity; submissions beyond it are rejected",
    )
    parser.add_argument(
        "--interactive-limit", type=int, default=None, metavar="N",
        help="max queued interactive-class jobs",
    )
    parser.add_argument(
        "--batch-limit", type=int, default=None, metavar="N",
        help="max queued batch-class jobs",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="default per-job timeout in seconds",
    )
    parser.add_argument(
        "--retries", type=int, default=0,
        help="default retry budget for timed-out/crashed jobs",
    )
    parser.add_argument("--cache-dir", metavar="DIR")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument(
        "--runner", metavar="MODULE:FUNCTION", default=None,
        help="custom job-body spec resolved in the workers (default: run "
        "a registry experiment); implies accepting any exp_id, since the "
        "runner owns the namespace",
    )
    parser.add_argument(
        "--metrics-interval", type=float, default=10.0,
        help="seconds between structured metrics log lines (0 disables)",
    )
    parser.add_argument(
        "--timeline", metavar="PATH", default=None,
        help="record queue-wait/dispatch/worker-exec spans and write a "
        "Perfetto trace JSON here at shutdown",
    )
    args = parser.parse_args(argv)

    logging.basicConfig(level=logging.INFO, format="%(message)s")
    class_limits = {}
    if args.interactive_limit is not None:
        class_limits["interactive"] = args.interactive_limit
    if args.batch_limit is not None:
        class_limits["batch"] = args.batch_limit
    timeline = None
    if args.timeline:
        import time as _time

        from ..profiling.timeline import Timeline

        timeline = Timeline(
            time_fn=_time.monotonic, name="serve", tag_os_ids=True
        )
    config = ServiceConfig(
        workers=args.workers,
        capacity=args.capacity,
        class_limits=class_limits or None,
        default_timeout=args.timeout,
        default_retries=args.retries,
        runner_spec=args.runner or DEFAULT_RUNNER,
        cache=None if args.no_cache else ResultCache(args.cache_dir),
        known_experiments=(
            None if args.runner else frozenset(experiment_ids())
        ),
        metrics_interval=args.metrics_interval,
        timeline=timeline,
    )

    async def amain() -> None:
        service = SimulationService(config)
        await service.start()
        loop = asyncio.get_running_loop()
        server_task = asyncio.ensure_future(
            serve_tcp(service, args.host, args.port)
        )
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, server_task.cancel)
        try:
            await server_task
        except asyncio.CancelledError:
            logger.info("serve: signal received, draining")
            await service.shutdown()
        if timeline is not None:
            from ..profiling.timeline import export_perfetto

            out = export_perfetto([timeline], args.timeline)
            logger.info("serve: wrote %d-event timeline to %s",
                        len(timeline), out)

    asyncio.run(amain())
    return 0
