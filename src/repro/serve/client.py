"""Blocking client for the `repro-bench serve` TCP endpoint.

Speaks the newline-delimited-JSON protocol from
:mod:`repro.serve.service` over a plain socket, so scripts (and the
``repro-bench submit`` CLI) need no asyncio of their own.
"""

from __future__ import annotations

import json
import socket
import time


#: Ops safe to replay blind on a fresh connection: pure reads, plus
#: ``submit`` — simulations are deterministic and cache-keyed, so a
#: resubmitted job either coalesces, hits the cache, or recomputes the
#: identical result.
IDEMPOTENT_OPS = frozenset({"ping", "metrics", "submit"})


class ServeClient:
    """One connection to a running simulation service.

    A dropped connection mid-session (a replica killed and respawned by
    the cluster gateway, a server restart) is invisible for idempotent
    payloads: :meth:`request` redials with exponential backoff and
    replays the op up to ``reconnects`` times before giving up.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        *,
        connect_timeout: float = 5.0,
        reconnects: int = 2,
        reconnect_backoff: float = 0.2,
    ):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.max_reconnects = reconnects
        self.reconnect_backoff = reconnect_backoff
        self.reconnects = 0  # successful redials, for observability
        self._connect(connect_timeout)

    def _connect(self, connect_timeout: float) -> None:
        deadline = time.monotonic() + connect_timeout
        while True:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=5.0
                )
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.1)  # server may still be starting
        self._file = self._sock.makefile("rwb")

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(
        self,
        payload: dict,
        timeout: float | None = None,
        *,
        idempotent: bool | None = None,
    ) -> dict:
        """Send one op and block for its reply line.

        ``idempotent`` overrides the per-op default
        (:data:`IDEMPOTENT_OPS`); non-idempotent payloads fail fast on a
        dropped connection instead of replaying."""
        if idempotent is None:
            idempotent = payload.get("op") in IDEMPOTENT_OPS
        retries = self.max_reconnects if idempotent else 0
        backoff = self.reconnect_backoff
        for attempt in range(retries + 1):
            try:
                return self._request_once(payload, timeout)
            except (ConnectionError, OSError):
                if attempt >= retries:
                    raise
                time.sleep(backoff)
                backoff *= 2
                self.close()
                self._connect(self.connect_timeout)
                self.reconnects += 1
        raise AssertionError("unreachable")

    def _request_once(self, payload: dict, timeout: float | None) -> dict:
        self._sock.settimeout(timeout)
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def ping(self) -> bool:
        return self.request({"op": "ping"}).get("ok", False)

    def submit(
        self,
        exp_id: str,
        kwargs: dict | None = None,
        *,
        job_class: str = "batch",
        timeout: float | None = None,
        retries: int | None = None,
        wait: bool = True,
        wait_timeout: float | None = None,
    ) -> dict:
        """Submit one what-if job; with ``wait`` the reply carries the
        serialised result rows. Rejections come back as
        ``{"ok": False, "rejected": True, "reason": ...}``."""
        payload: dict = {
            "op": "submit",
            "exp_id": exp_id,
            "kwargs": kwargs or {},
            "job_class": job_class,
            "wait": wait,
        }
        if timeout is not None:
            payload["timeout"] = timeout
        if retries is not None:
            payload["retries"] = retries
        if wait_timeout is not None:
            payload["wait_timeout"] = wait_timeout
        return self.request(payload, timeout=None if wait else 10.0)

    def metrics(self) -> dict:
        return self.request({"op": "metrics"})["metrics"]

    def shutdown(self) -> dict:
        """Ask the server to drain and exit."""
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()


def main_submit(argv: list[str] | None = None) -> int:
    """``repro-bench submit`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-bench submit",
        description="Submit what-if jobs to a running 'repro-bench serve' "
        "instance (or fetch its metrics / shut it down).",
    )
    parser.add_argument(
        "experiments", nargs="*", help="experiment ids to submit"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument(
        "--kwargs", metavar="JSON", default="{}",
        help='experiment kwargs as JSON, e.g. \'{"scale": 0.05}\'',
    )
    parser.add_argument(
        "--class", dest="job_class", default="batch",
        choices=["interactive", "batch"],
    )
    parser.add_argument("--timeout", type=float, help="per-job timeout (s)")
    parser.add_argument("--retries", type=int, help="per-job retry budget")
    parser.add_argument(
        "--no-wait", action="store_true",
        help="enqueue and return immediately (no result rows)",
    )
    parser.add_argument(
        "--connect-timeout", type=float, default=5.0,
        help="seconds to keep retrying the initial connection",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the service metrics snapshot (after any submissions)",
    )
    parser.add_argument(
        "--shutdown", action="store_true",
        help="drain and stop the server (after any submissions)",
    )
    args = parser.parse_args(argv)
    if not (args.experiments or args.metrics or args.shutdown):
        parser.error("nothing to do: give experiment ids, --metrics, "
                     "or --shutdown")
    try:
        kwargs = json.loads(args.kwargs)
    except json.JSONDecodeError as exc:
        parser.error(f"--kwargs is not valid JSON: {exc}")

    from ..bench.report import render_table
    from ..bench.runner import _deserialize

    failures = 0
    with ServeClient(
        args.host, args.port, connect_timeout=args.connect_timeout
    ) as client:
        for exp_id in args.experiments:
            reply = client.submit(
                exp_id,
                kwargs,
                job_class=args.job_class,
                timeout=args.timeout,
                retries=args.retries,
                wait=not args.no_wait,
            )
            if reply.get("rejected"):
                failures += 1
                print(
                    f"{exp_id}: REJECTED ({reply['reason']}"
                    f"{': ' + reply['detail'] if reply.get('detail') else ''})"
                )
            elif not reply.get("ok"):
                failures += 1
                print(f"{exp_id}: FAILED ({reply.get('error')})")
            elif "result" in reply:
                tag = (
                    "cache" if reply.get("cached")
                    else "coalesced" if reply.get("coalesced")
                    else reply.get("job_id", "?")
                )
                print(render_table(_deserialize(reply["result"])))
                print(f"[{exp_id} served ({tag})]\n")
            else:
                print(f"{exp_id}: queued as {reply.get('job_id')}")
        if args.metrics:
            print(json.dumps(client.metrics(), indent=2, sort_keys=True))
        if args.shutdown:
            client.shutdown()
            print("server shutting down")
    return 1 if failures else 0
