#!/usr/bin/env python3
"""Memory-utilisation profiles (the paper's Section 3.2 tool, Figure 4).

Runs hotspot under system and managed memory with the 100 ms sampler and
renders the RSS / GPU-used time series as ASCII sparklines: the managed
version shows the RSS-drop / GPU-jump crossover when compute starts;
the system version keeps GPU usage flat.

Run:  python examples/memory_profile.py
"""

from repro import MemoryMode
from repro.bench.harness import run_app

BLOCKS = " .:-=+*#%@"


def sparkline(series, peak):
    if peak <= 0:
        return " " * len(series)
    return "".join(
        BLOCKS[min(int(v / peak * (len(BLOCKS) - 1)), len(BLOCKS) - 1)]
        for v in series
    )


def main():
    for mode in (MemoryMode.SYSTEM, MemoryMode.MANAGED):
        result, _ = run_app(
            "hotspot",
            mode,
            migration=False,
            profile=True,
            config_overrides={"profiler_sample_period": 0.02},
        )
        prof = result.profile
        rss = prof.rss_series
        gpu = prof.gpu_series
        peak = max(max(rss, default=1), max(gpu, default=1))
        print(f"\n== hotspot / {mode.value} memory ==")
        print(f"  duration {prof.samples[-1].time:.2f} s simulated, "
              f"{len(prof.samples)} samples @ 20 ms")
        print(f"  CPU RSS  |{sparkline(rss, peak)}| "
              f"peak {prof.peak_rss_bytes() / 1e9:.2f} GB")
        print(f"  GPU used |{sparkline(gpu, peak)}| "
              f"peak {prof.peak_gpu_bytes() / 1e9:.2f} GB")
        for t, label in prof.annotations:
            print(f"  t={t:6.2f}s  {label}")

    print(
        "\nSystem memory: RSS ramps during CPU init, GPU usage stays flat\n"
        "through compute (remote access, no migration). Managed memory:\n"
        "the on-demand migration at compute start empties the RSS and\n"
        "fills GPU memory -- the crossover of the paper's Figure 4."
    )


if __name__ == "__main__":
    main()
