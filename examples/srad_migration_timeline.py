#!/usr/bin/env python3
"""SRAD access-counter migration timeline (the paper's Figure 10).

Runs SRAD's system-memory and managed-memory versions with automatic
migration enabled and prints, per iteration, the execution time and the
memory traffic split between GPU memory and NVLink-C2C — showing the
three sub-phases of the system version: first-touch spike, migration
ramp, and a steady state that outperforms managed memory.

Run:  python examples/srad_migration_timeline.py
"""

from repro import MemoryMode
from repro.bench.harness import run_app


def ascii_bar(value, peak, width=30):
    n = int(width * value / peak) if peak else 0
    return "#" * n


def main():
    runs = {}
    for mode in (MemoryMode.SYSTEM, MemoryMode.MANAGED):
        result, gh = run_app("srad", mode, page_size=65536, migration=True)
        runs[mode] = result
        total_migrated = gh.counters.total.migration_h2d_bytes
        print(
            f"{mode.value}: total migrated to GPU "
            f"{total_migrated / 1e9:.2f} GB, "
            f"D2H migrations: {gh.counters.total.pages_migrated_d2h} pages"
        )

    peak = max(
        t for r in runs.values() for t in r.iteration_times[1:]
    )
    print(f"\n{'iter':>4s}  {'system ms':>10s} {'managed ms':>11s}   "
          f"{'system C2C GB':>13s} {'system GPU GB':>13s}")
    print("-" * 78)
    sysr = runs[MemoryMode.SYSTEM]
    mngr = runs[MemoryMode.MANAGED]
    for i in range(len(sysr.iteration_times)):
        s_ms = sysr.iteration_times[i] * 1e3
        m_ms = mngr.iteration_times[i] * 1e3
        c2c = sysr.iteration_traffic[i]["c2c_read_bytes"] / 1e9
        gpu = sysr.iteration_traffic[i]["gpu_read_bytes"] / 1e9
        marker = ""
        if i == 0:
            marker = "  <- first-touch spike"
        elif c2c > 0.05:
            marker = "  <- migration ramp"
        elif s_ms < m_ms:
            marker = "  <- system wins"
        print(
            f"{i + 1:>4d}  {s_ms:>10.1f} {m_ms:>11.1f}   "
            f"{c2c:>13.2f} {gpu:>13.2f}{marker}"
        )

    print(
        "\nC2C reads decay to zero as access-counter notifications migrate\n"
        "the working set to GPU memory (iterations 2-4); from iteration 5\n"
        "the system version reads everything locally and beats managed\n"
        "memory, whose CPU statistics step keeps thrashing pages back."
    )


if __name__ == "__main__":
    main()
