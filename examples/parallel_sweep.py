#!/usr/bin/env python3
"""Regenerate several figures in parallel, with a warm result cache.

Drives the experiment registry through ``run_experiments_parallel``: the
first run fans the experiments out over a process pool, subsequent runs
with the same scale are served entirely from the on-disk cache (so
re-plotting or diffing results costs nothing). This is the programmatic
equivalent of ``python -m repro.bench run --jobs N``.

Run:  python examples/parallel_sweep.py [--scale 0.1] [--jobs 4]
"""

import argparse
import time

from repro.bench import (
    ResultCache,
    experiment_ids,
    render_table,
    run_experiments_parallel,
)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=0.1,
                        help="problem/machine scale (1.0 = paper testbed)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes")
    parser.add_argument("--cache-dir", default=None,
                        help="cache location (default: ~/.cache/repro-bench)")
    args = parser.parse_args()

    wanted = [e for e in experiment_ids() if e.startswith("fig")]
    cache = ResultCache(args.cache_dir)

    t0 = time.perf_counter()
    results = run_experiments_parallel(
        wanted, jobs=args.jobs, cache=cache, kwargs={"scale": args.scale},
    )
    dt = time.perf_counter() - t0

    for result in results.values():
        print(render_table(result))
        print()
    print(
        f"{len(results)} experiments in {dt:.1f}s "
        f"({cache.hits} cached, {cache.misses} regenerated); "
        f"run again to see the cache take over."
    )


if __name__ == "__main__":
    main()
