#!/usr/bin/env python3
"""The statevector simulator as a general quantum circuit engine.

Beyond the Quantum Volume benchmark, the Qiskit-Aer stand-in executes
arbitrary circuits through its gate library. This example prepares a GHZ
state, runs the quantum Fourier transform, samples a Quantum Volume
circuit, and reports the heavy-output statistic the QV protocol uses.

Run:  python examples/quantum_circuits.py
"""

import numpy as np

from repro.apps.quantum.circuits import generate_qv_circuit, run_circuit
from repro.apps.quantum.gates import Circuit, ghz_circuit, qft_circuit
from repro.apps.quantum.statevector import Statevector

rng = np.random.default_rng(42)

# -- GHZ state --------------------------------------------------------------
n = 5
state = ghz_circuit(n).run()
probs = state.probabilities()
print(f"GHZ({n}): P(|{'0' * n}>) = {probs[0]:.3f}, "
      f"P(|{'1' * n}>) = {probs[-1]:.3f}, everything else "
      f"{probs[1:-1].sum():.2e}")

# -- QFT --------------------------------------------------------------------
state = qft_circuit(4).run()
print(f"QFT(4) of |0000>: uniform over {state.amplitudes.size} outcomes "
      f"(max deviation {abs(state.probabilities() - 1 / 16).max():.2e})")

# -- a hand-built circuit ----------------------------------------------------
bell_plus = (
    Circuit(3)
    .h(0)
    .cx(0, 1)
    .rx(np.pi / 3, 2)
    .cz(1, 2)
)
state = bell_plus.run()
print(f"custom 3-qubit circuit: norm = {state.norm():.6f}, "
      f"{bell_plus.depth_ops} ops")

# -- Quantum Volume sampling ---------------------------------------------------
n = 8
circuit = generate_qv_circuit(n, rng)
state = Statevector(n)
run_circuit(state, circuit)
hop = state.heavy_output_probability()
counts = state.sample_counts(1000, rng)
top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
print(f"\nQuantum Volume {n}q ({circuit.n_gates} SU(4) gates):")
print(f"  heavy-output probability = {hop:.3f} "
      f"(QV pass threshold 2/3; ideal Haar ~0.85)")
print("  top sampled outcomes:",
      ", ".join(f"|{k:0{n}b}>x{v}" for k, v in top))
