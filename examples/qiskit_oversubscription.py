#!/usr/bin/env python3
"""Quantum Volume under GPU memory oversubscription (Sections 4 and 7).

Sweeps the Quantum Volume simulation across qubit counts on the simulated
GH200, through the point where the 8*2^N-byte statevector no longer fits
in the 96 GB of HBM3. Compares the explicit chunked pipeline, system
memory, managed memory, and managed memory with explicit prefetching —
the story of the paper's Figures 12-13.

Run:  python examples/qiskit_oversubscription.py [--qubits 30 32 33 34]
"""

import argparse

from repro import MemoryMode
from repro.apps import get_application
from repro.bench.harness import make_config, run_app


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--qubits", type=int, nargs="+",
                        default=[30, 32, 33, 34])
    args = parser.parse_args()

    cfg = make_config(1.0)
    gpu_gb = cfg.gpu_memory_bytes / 2**30
    print(f"GPU memory: {gpu_gb:.0f} GiB | statevector = 8 * 2^N bytes\n")

    header = (
        f"{'qubits':>6s} {'sv GiB':>8s} {'fits?':>6s} "
        f"{'explicit s':>11s} {'system s':>10s} {'managed s':>10s} "
        f"{'mng+prefetch s':>15s}"
    )
    print(header)
    print("-" * len(header))

    for q in args.qubits:
        sv_gib = (8 << q) / 2**30
        fits = "yes" if (8 << q) < cfg.gpu_memory_bytes else "NO"
        times = {}
        for label, mode, kwargs in (
            ("explicit", MemoryMode.EXPLICIT, {}),
            ("system", MemoryMode.SYSTEM, {}),
            ("managed", MemoryMode.MANAGED, {}),
            ("prefetch", MemoryMode.MANAGED, {"prefetch": True}),
        ):
            result, _ = run_app(
                "qiskit",
                mode,
                page_size=65536,
                migration=False,
                app_kwargs={"qubits": q, **kwargs},
            )
            times[label] = result.reported_total
        print(
            f"{q:>6d} {sv_gib:>8.1f} {fits:>6s} "
            f"{times['explicit']:>11.2f} {times['system']:>10.2f} "
            f"{times['managed']:>10.2f} {times['prefetch']:>15.2f}"
        )

    print(
        "\nOnce the statevector exceeds HBM (34 qubits), the managed\n"
        "version stops migrating and reads remotely at low bandwidth;\n"
        "explicit cudaMemPrefetchAsync restores GPU-memory-fed compute,\n"
        "approaching the explicit pipeline's ideal (paper Figures 12-13)."
    )


if __name__ == "__main__":
    main()
