#!/usr/bin/env python3
"""Record a workload's access trace once, replay it under many configs.

Captures the page-granularity access trace of a BFS run, then replays it
onto differently configured systems — other page sizes, migration
thresholds, first-touch policies — without re-running the graph
algorithm. The cheapest way to sweep the configuration space over an
expensive workload.

Run:  python examples/trace_replay.py
"""

from repro import GraceHopperSystem, MemoryMode, SystemConfig
from repro.apps import get_application
from repro.profiling.trace import TraceRecorder, replay
from repro.sim.config import FirstTouchPolicy


def main():
    # 1. Record once.
    gh = GraceHopperSystem(SystemConfig.scaled(1 / 64, page_size=65536))
    app = get_application("bfs", scale=1 / 64)
    recorder = TraceRecorder(gh.mem)
    with recorder:
        app.run(gh, MemoryMode.SYSTEM)
    trace = recorder.trace
    print(
        f"recorded {len(trace)} access batches, "
        f"footprint {sum(trace.footprint_bytes().values()) / 1e6:.1f} MB, "
        f"GPU write fraction {trace.gpu_write_fraction():.2f}\n"
    )

    # 2. Replay under alternative configurations.
    configs = [
        ("64K, migration on", dict(page_size=65536, migration_enable=True)),
        ("64K, migration off", dict(page_size=65536, migration_enable=False)),
        ("4K, migration on", dict(page_size=4096, migration_enable=True)),
        ("64K, threshold 32", dict(page_size=65536, migration_enable=True,
                                   migration_threshold=32)),
        ("64K, CPU-only faults", dict(
            page_size=65536, migration_enable=False,
            first_touch_policy=FirstTouchPolicy.CPU_ALWAYS)),
    ]
    print(f"{'configuration':24s} {'replay s':>9s} {'C2C GB':>8s} "
          f"{'migrated pages':>15s}")
    print("-" * 62)
    for label, overrides in configs:
        target = GraceHopperSystem(SystemConfig.scaled(1 / 64, **overrides))
        summary = replay(trace, target)
        print(
            f"{label:24s} {summary['replay_seconds']:>9.4f} "
            f"{summary['c2c_read_bytes'] / 1e9:>8.2f} "
            f"{summary['pages_migrated_h2d']:>15d}"
        )

    print(
        "\nThe same trace exercises every configuration: thresholds move\n"
        "pages earlier or later, page size changes the fault economics,\n"
        "and a CPU-only fault handler shows what the integrated page\n"
        "table buys."
    )


if __name__ == "__main__":
    main()
