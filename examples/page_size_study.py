#!/usr/bin/env python3
"""System page size study (the paper's Section 5.2 in miniature).

Runs every Rodinia application's system-memory version under 4 KB and
64 KB system pages and prints the per-phase times side by side:
de-allocation collapses at 64 KB (fewer PTEs to tear down) while compute
usually prefers 4 KB (automatic migrations of barely-reused data hurt),
with SRAD as the iterative exception.

Run:  python examples/page_size_study.py [--scale 0.05]
"""

import argparse

from repro import MemoryMode
from repro.apps import get_application
from repro.bench.harness import run_app


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=1.0,
                        help="problem/machine scale (1.0 = paper testbed)")
    args = parser.parse_args()

    apps = ["bfs", "hotspot", "needle", "pathfinder", "srad"]
    print(
        f"{'app':12s} {'page':>5s} {'alloc ms':>10s} {'compute ms':>11s} "
        f"{'dealloc ms':>11s} {'total ms':>10s}"
    )
    print("-" * 64)
    for name in apps:
        for page in (4096, 65536):
            result, _ = run_app(
                name,
                MemoryMode.SYSTEM,
                scale=args.scale,
                page_size=page,
                migration=True,
            )
            p = result.phases
            print(
                f"{name:12s} {page // 1024:>4d}K "
                f"{p.allocation * 1e3:>10.2f} {p.compute * 1e3:>11.2f} "
                f"{p.deallocation * 1e3:>11.2f} "
                f"{result.reported_total * 1e3:>10.2f}"
            )
        print()

    print(
        "64 KB pages slash alloc/dealloc (16x fewer PTEs) but can slow\n"
        "compute: every page crosses the 256-access migration threshold\n"
        "in one sweep, so the driver migrates data that is never reused.\n"
        "SRAD re-reads its image 12 times and is the exception that\n"
        "profits (the paper's Figures 6-7)."
    )


if __name__ == "__main__":
    main()
