#!/usr/bin/env python3
"""Incremental what-if sweep over one recorded trace, via the serve tier.

Records an access trace once (a streaming workload whose access-counter
migrations spread over several epochs), then stands up a
:class:`repro.serve.SimulationService` whose workers run the
checkpoint-aware replayer (``repro.sim.whatif:whatif_job_runner``) and
submits a sweep:

1. a baseline replay — cold: it simulates every epoch and *stores* a
   checkpoint per epoch boundary in the shared on-disk store;
2. divergent configurations that disable counter migration at epoch 2,
   3 and 4 — each restores the deepest checkpoint shared with the
   baseline and replays **only the suffix** from its divergence epoch.

Every claim is asserted: divergent jobs resume at ``epoch - 1`` epochs
deep, replay strictly fewer batches than the baseline, reproduce the
exact state fingerprint of a from-scratch replay of the same config, and
the checkpoint hits/restored bytes show up in both the service metrics
snapshot and ``repro-bench cache``-style store stats.

Run:  python examples/whatif_sweep.py
"""

import asyncio
import json
import tempfile
from pathlib import Path

import numpy as np

from repro.bench.runner import ResultCache
from repro.core.kernels import ArrayAccess
from repro.core.runtime import GraceHopperSystem
from repro.profiling.trace import AccessTrace, TraceRecorder
from repro.serve import ServiceConfig, SimulationService
from repro.sim.checkpoint import CheckpointStore
from repro.sim.config import SystemConfig
from repro.sim.whatif import WHATIF_RUNNER, incremental_replay

SCALE = 1 / 512
PAGE = 64 * 1024
ITERATIONS = 8
EPOCH_EVERY = 1


def record_trace(path: Path) -> int:
    """Record a streaming workload; returns the number of batches."""
    gh = GraceHopperSystem(SystemConfig.scaled(SCALE, page_size=PAGE))
    with TraceRecorder(gh.mem) as rec:
        a = gh.malloc(np.float32, (1 << 19,), name="stream.in")
        b = gh.malloc(np.float32, (1 << 19,), name="stream.out")
        gh.cpu_phase(
            "init", [ArrayAccess.write_(a), ArrayAccess.write_(b)]
        )
        for it in range(ITERATIONS):
            gh.launch_kernel(
                f"stream{it}",
                [ArrayAccess.read(a), ArrayAccess.write_(b)],
                flops=1e9,
            )
    rec.trace.save(path)
    return len(rec.trace)


async def main() -> None:
    tmp = Path(tempfile.mkdtemp(prefix="repro-whatif-sweep-"))
    trace_path = tmp / "stream.trace.jsonl"
    ckpt_root = tmp / "checkpoints"
    batches = record_trace(trace_path)
    print(f"recorded {batches} access batches -> {trace_path}")

    base_kwargs = {
        "trace_path": str(trace_path),
        "scale": SCALE,
        "page_size": PAGE,
        "epoch_every": EPOCH_EVERY,
        "checkpoint_root": str(ckpt_root),
    }
    config = ServiceConfig(
        workers=2,
        capacity=8,
        runner_spec=WHATIF_RUNNER,
        cache=ResultCache(tmp / "results"),
        metrics_interval=0.0,
    )
    async with SimulationService(config) as service:
        # -- 1. baseline: cold replay, populates the checkpoint store --
        baseline = await service.submit("whatif", base_kwargs).result()
        row = baseline.rows[0]
        print(
            f"baseline: {row['batches_replayed']}/{row['batches']} batches, "
            f"resumed_epoch={row['resumed_epoch']}, "
            f"{row['epochs']} epochs checkpointed"
        )
        assert row["resumed_epoch"] == 0, "baseline must run cold"
        assert row["batches_replayed"] == row["batches"]

        # -- 2. divergent configs: migration off at epoch k ------------
        for epoch in (2, 3, 4):
            kwargs = dict(
                base_kwargs,
                interventions=[
                    {
                        "epoch": epoch,
                        "action": "set_migration_enable",
                        "params": {"value": False},
                    }
                ],
            )
            res = await service.submit("whatif", kwargs).result()
            row = res.rows[0]
            print(
                f"diverge@{epoch}: resumed_epoch={row['resumed_epoch']}, "
                f"replayed {row['batches_replayed']}/{row['batches']}, "
                f"migrated {row['pages_migrated_h2d']} pages h2d"
            )
            # The config diverges at `epoch`, so the deepest shareable
            # checkpoint is the one captured just before it.
            assert row["resumed_epoch"] == epoch, (
                f"expected suffix replay from epoch {epoch}, "
                f"got {row['resumed_epoch']}"
            )
            assert row["batches_replayed"] < row["batches"]
            # Exactness: a from-scratch replay of the divergent config
            # reaches the byte-identical end state.
            full = incremental_replay(
                AccessTrace.load(trace_path),
                SystemConfig.scaled(SCALE, page_size=PAGE),
                epoch_every=EPOCH_EVERY,
                interventions=kwargs["interventions"],
            )
            assert row["state_fingerprint"] == full["state_fingerprint"], (
                "suffix replay diverged from the full replay"
            )

        snap = service.metrics_snapshot()

    ckpt = snap["checkpoint"]
    print("service checkpoint metrics:", json.dumps(ckpt, sort_keys=True))
    assert ckpt["hits"] >= 3, "each divergent job should hit a checkpoint"
    assert ckpt["restored_bytes"] > 0
    store_stats = CheckpointStore(ckpt_root).stats()
    print(
        f"store: {store_stats['entries']} checkpoints "
        f"({store_stats['bytes']} bytes), lifetime "
        f"{store_stats['lifetime_hits']} hits / "
        f"{store_stats['lifetime_misses']} misses, "
        f"{store_stats['lifetime_restored_bytes']} bytes restored"
    )
    assert store_stats["entries"] > 0
    assert store_stats["lifetime_hits"] >= 3
    print("OK: divergent what-ifs replayed only their suffix, exactly.")


if __name__ == "__main__":
    asyncio.run(main())
