#!/usr/bin/env python3
"""The memory-management advisor: the paper's guidance as a tool.

Records the access trace of a workload, derives its characteristics,
and prints the recommended memory mode / page size / optimisations with
the paper sections that justify each choice — then validates the advice
by running the workload under both recommended and rejected modes.

Run:  python examples/memory_advisor.py
"""

import numpy as np

from repro import GraceHopperSystem, MemoryMode, SystemConfig
from repro.apps import get_application
from repro.core import profile_from_trace, recommend
from repro.core.advisor import InitSide, WorkloadProfile
from repro.profiling.trace import TraceRecorder


def advise_for(name, **kwargs):
    gh = GraceHopperSystem(SystemConfig.scaled(1 / 64, page_size=65536))
    app = get_application(name, scale=1 / 64, **kwargs)
    recorder = TraceRecorder(gh.mem)
    with recorder:
        app.run(gh, MemoryMode.SYSTEM)
    profile = profile_from_trace(recorder.trace)
    return profile, recommend(profile)


def validate(name, rec, **kwargs):
    times = {}
    for mode in (MemoryMode.SYSTEM, MemoryMode.MANAGED):
        gh = GraceHopperSystem(
            SystemConfig.scaled(
                1 / 64,
                page_size=rec.page_size,
                migration_enable=rec.migration_enable,
            )
        )
        app = get_application(name, scale=1 / 64, **kwargs)
        times[mode] = app.run(gh, mode).reported_total
    return times


def main():
    for name, kwargs in (("pathfinder", {}), ("srad", {})):
        profile, rec = advise_for(name, **kwargs)
        print(f"== {name} ==")
        print(
            f"  profile: init={profile.init_side.value}, "
            f"reuse={profile.reuse_factor:.1f}x, "
            f"irregularity={profile.irregularity:.2f}"
        )
        print(
            f"  advice: {rec.mode.value} memory, "
            f"{rec.page_size // 1024} KB pages, "
            f"migration {'on' if rec.migration_enable else 'off'}"
        )
        for reason in rec.reasons:
            print(f"    - {reason}")
        for opt in rec.optimizations:
            print(f"    + {opt}")
        times = validate(name, rec, **kwargs)
        best = min(times, key=times.get)
        verdict = "CONFIRMED" if best is rec.mode else "MISSED"
        print(
            f"  validation: system={times[MemoryMode.SYSTEM] * 1e3:.1f} ms, "
            f"managed={times[MemoryMode.MANAGED] * 1e3:.1f} ms -> "
            f"{best.value} wins ({verdict})\n"
        )

    print("== hypothetical: 34-qubit statevector (natural oversubscription) ==")
    profile = WorkloadProfile(
        init_side=InitSide.GPU,
        reuse_factor=68,
        oversubscription_ratio=1.3,
    )
    rec = recommend(profile)
    print(f"  advice: {rec.mode.value} memory, {rec.page_size // 1024} KB pages")
    for reason in rec.reasons:
        print(f"    - {reason}")
    for opt in rec.optimizations:
        print(f"    + {opt}")


if __name__ == "__main__":
    main()
