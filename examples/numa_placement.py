#!/usr/bin/env python3
"""NUMA placement policies on the superchip's two memory nodes.

Grace Hopper's LPDDR5X and HBM3 appear as two NUMA nodes. Beyond the
first-touch default the paper's applications use, the OS offers explicit
placement; this example compares what a CPU streaming workload sees when
its buffer is bound to each node or page-interleaved across both —
trading average latency for aggregate bandwidth.

Run:  python examples/numa_placement.py
"""

import numpy as np

from repro import GraceHopperSystem, SystemConfig
from repro.core import ArrayAccess
from repro.mem import NumaAllocator, NumaNode, NumaPolicy, NumaTopology

N_BYTES = 8 * 1024**3  # an 8 GiB CPU working set


def run_policy(policy, node=NumaNode.CPU_DDR):
    gh = GraceHopperSystem(SystemConfig.paper_gh200(page_size=65536))
    numa = NumaAllocator(gh.config, gh.mem.physical)
    arr = gh.malloc(np.float64, (N_BYTES // 8,), name="buf")
    numa.place(arr.alloc, policy, node)
    # Touch whatever remains unmapped (first-touch on the CPU), then
    # stream the buffer with the full core count.
    gh.cpu_phase("touch", [ArrayAccess.write_(arr)], threads=72)
    t0 = gh.now
    gh.cpu_phase("stream", [ArrayAccess.read(arr)], threads=72)
    dt = gh.now - t0
    from repro.sim.config import Location

    split = (
        arr.alloc.pages_at(Location.CPU),
        arr.alloc.pages_at(Location.GPU),
    )
    return dt, N_BYTES / dt / 1e9, split


def main():
    topo = NumaTopology(SystemConfig.paper_gh200())
    print("CPU-visible bandwidth by node:")
    for node in topo.nodes():
        print(f"  {node.name:8s} {topo.cpu_visible_bandwidth(node) / 1e9:6.0f} GB/s")
    print(f"  interleaved model: {topo.interleaved_cpu_bandwidth() / 1e9:6.0f} GB/s\n")

    cases = [
        ("first-touch (DDR)", NumaPolicy.DEFAULT, NumaNode.CPU_DDR),
        ("bind DDR", NumaPolicy.BIND, NumaNode.CPU_DDR),
        ("bind HBM", NumaPolicy.BIND, NumaNode.GPU_HBM),
        ("interleave", NumaPolicy.INTERLEAVE, NumaNode.CPU_DDR),
    ]
    print(f"{'placement':20s} {'stream s':>9s} {'GB/s':>7s} {'pages cpu/gpu':>16s}")
    print("-" * 58)
    for label, policy, node in cases:
        dt, gbs, split = run_policy(policy, node)
        print(f"{label:20s} {dt:>9.3f} {gbs:>7.0f} {split[0]:>8d}/{split[1]}")

    print(
        "\nBinding to HBM drags every CPU read over NVLink-C2C; the\n"
        "first-touch default keeps CPU data in LPDDR5X (what the paper's\n"
        "testbed relies on). Interleaving lands between the two bound\n"
        "cases in this executor (it serialises the remote stream); the\n"
        "topology model above shows the idealised dual-stream ceiling\n"
        "that perfectly overlapped prefetching could reach."
    )


if __name__ == "__main__":
    main()
