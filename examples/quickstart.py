#!/usr/bin/env python3
"""Quickstart: allocate, compute, and inspect the three memory paths.

Builds a simulated GH200, runs the same streaming kernel over a
system-allocated buffer (malloc), a managed buffer (cudaMallocManaged),
and an explicit cudaMalloc+memcpy pair, and prints where the bytes
moved and what each path cost — the Table 1 trade-offs in five minutes.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GraceHopperSystem, SystemConfig
from repro.core import ArrayAccess

N = 1 << 26  # 64M floats = 256 MB


def banner(title):
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def fresh():
    gh = GraceHopperSystem(SystemConfig.paper_gh200(page_size=65536))
    gh.launch_kernel("warmup", [])  # create the CUDA context up front
    return gh


def report(gh, label, seconds):
    c = gh.counters.total
    print(f"{label:28s} {seconds * 1e3:8.2f} ms")
    print(
        f"{'':28s} HBM {c.hbm_read_bytes / 1e6:8.1f} MB read | "
        f"C2C {c.c2c_read_bytes / 1e6:8.1f} MB read | "
        f"faults gpu={c.gpu_replayable_faults} cpu={c.cpu_page_faults} "
        f"far={c.managed_far_faults}"
    )


# -- 1. system-allocated memory (malloc) ---------------------------------
banner("system-allocated memory (malloc)")
gh = fresh()
x = gh.malloc(np.float32, (N,), name="x")
t0 = gh.now
gh.cpu_phase("cpu-init", [ArrayAccess.write_(x)])
init_t = gh.now - t0
t0 = gh.now
gh.launch_kernel("reduce", [ArrayAccess.read(x)])
report(gh, "CPU init (first touch):", init_t)
report(gh, "GPU kernel (remote C2C):", gh.now - t0)
print("  pages resident:", repr(x.alloc))

# -- 2. CUDA managed memory ----------------------------------------------
banner("CUDA managed memory (cudaMallocManaged)")
gh = fresh()
x = gh.cuda_malloc_managed(np.float32, (N,), name="x")
gh.cpu_phase("cpu-init", [ArrayAccess.write_(x)])
t0 = gh.now
gh.launch_kernel("reduce", [ArrayAccess.read(x)])
report(gh, "GPU kernel (fault+migrate):", gh.now - t0)
t0 = gh.now
gh.launch_kernel("reduce-again", [ArrayAccess.read(x)])
report(gh, "GPU kernel (now local):", gh.now - t0)
print("  pages resident:", repr(x.alloc))

# -- 3. explicit copies ---------------------------------------------------
banner("explicit copies (cudaMalloc + cudaMemcpy)")
gh = fresh()
host = gh.malloc(np.float32, (N,), name="host")
dev = gh.cuda_malloc(np.float32, (N,), name="dev")
gh.cpu_phase("cpu-init", [ArrayAccess.write_(host)])
t0 = gh.now
gh.memcpy_h2d(dev, host)
copy_t = gh.now - t0
t0 = gh.now
gh.launch_kernel("reduce", [ArrayAccess.read(dev)])
report(gh, "cudaMemcpy H2D (pageable):", copy_t)
report(gh, "GPU kernel (local HBM):", gh.now - t0)

banner("takeaway")
print(
    "System memory reads remotely over NVLink-C2C without page faults;\n"
    "managed memory pays fault+migration once then runs at HBM speed;\n"
    "explicit copies pay the full transfer up front. Which wins depends\n"
    "on reuse -- exactly the trade-off the paper's Figure 3 maps."
)
