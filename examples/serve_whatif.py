#!/usr/bin/env python3
"""What-if serving demo: coalescing, backpressure, timeouts, metrics.

Stands up an in-process :class:`repro.serve.SimulationService` (three
workers, a six-seat queue) and throws 21 submissions at it the way a
busy deployment would:

* three slow "blocker" jobs that occupy every worker,
* one injected hung job with a 1 s timeout and one retry — it times
  out, retries, fails, and never stalls the jobs queued behind it,
* eight distinct quick what-ifs — more than the queue can seat, so the
  overflow is rejected with a machine-readable reason,
* eight duplicates of a blocker, which coalesce onto its execution,
* one resubmission of a finished job, served from the result cache.

Every claim is asserted against the final metrics snapshot, so this
doubles as the CI smoke test for the serving subsystem.

Run:  python examples/serve_whatif.py
"""

import asyncio
import json
import tempfile

from repro.bench.runner import ResultCache
from repro.serve import AdmissionError, JobFailed, ServiceConfig, SimulationService

WORKERS = 3
CAPACITY = 6


async def main() -> None:
    cache = ResultCache(tempfile.mkdtemp(prefix="repro-serve-demo-"))
    config = ServiceConfig(
        workers=WORKERS,
        capacity=CAPACITY,
        cache=cache,
        metrics_interval=0.0,
    )
    submitted = rejected = 0

    async with SimulationService(config) as service:
        # -- occupy every worker with slow (1.5 s) blockers ------------
        # distinct _serve_hang_s values keep the blockers from
        # coalescing with each other (the hook is stripped in-worker but
        # is part of the fingerprint)
        blocker_kwargs = [{"scale": 1.0, "_serve_hang_s": 1.5 + i / 100}
                          for i in range(WORKERS)]
        blockers = [service.submit("table1", kw) for kw in blocker_kwargs]
        submitted += WORKERS
        await asyncio.sleep(0.3)  # let them dequeue onto the workers

        # -- a hung job: 1 s timeout, one retry, never finishes --------
        hung = service.submit(
            "table2", {"_serve_hang_s": 60}, timeout=1.0, retries=1
        )
        submitted += 1

        # -- flood: 8 distinct quick what-ifs against 5 free seats -----
        distinct = []
        for i in range(8):
            submitted += 1
            try:
                distinct.append(
                    service.submit("table1", {"scale": 0.1 + i / 100})
                )
            except AdmissionError as exc:
                rejected += 1
                print(f"rejected what-if #{i}: {exc.reason} ({exc.detail})")

        # -- 8 duplicates of a blocker: coalesce, don't execute --------
        dupes = [service.submit("table1", blocker_kwargs[0]) for _ in range(8)]
        submitted += 8
        assert all(h.coalesced for h in dupes), "duplicates must coalesce"

        # -- everything accepted completes; the hung job fails ---------
        for handle in [*blockers, *distinct, *dupes]:
            assert (await handle.result(30)).rows
        try:
            await hung.result(30)
            raise AssertionError("hung job should have failed")
        except JobFailed as exc:
            print(f"hung job escalated as designed: {exc.reason}")

        # -- a finished what-if resubmits as a cache hit ---------------
        resubmit = service.submit("table1", {"scale": 0.1})
        submitted += 1
        assert resubmit.cached, "completed job should be served from cache"
        assert (await resubmit.result(1)).rows

        snapshot = service.metrics_snapshot()

    # ------------------------------------------------------------------
    # The snapshot must be consistent with what we just did.
    # ------------------------------------------------------------------
    jobs = snapshot["jobs"]
    assert submitted >= 20, submitted
    assert jobs["submitted"] == submitted
    assert jobs["coalesced"] == 8
    assert jobs["rejected"] == {"queue full": rejected} and rejected > 0
    assert jobs["timeouts"] == 2 and jobs["retries"] == 1
    assert jobs["failed"] == 1
    assert jobs["completed"] == WORKERS + len(distinct)
    # every submission is accounted for exactly once
    assert jobs["submitted"] == (
        jobs["accepted"] + jobs["rejected_total"] + jobs["coalesced"]
        + snapshot["cache"]["hits"]
    )
    assert snapshot["cache"]["hits"] == 1
    assert snapshot["workers"]["restarts"] >= 2  # one per timed-out attempt
    assert snapshot["latency_s"]["total"]["count"] == (
        jobs["completed"] + jobs["failed"]
    )
    assert snapshot["queue"]["depth"] == 0 and snapshot["in_flight"] == 0

    print()
    print("final metrics snapshot:")
    print(json.dumps(snapshot, indent=2, sort_keys=True))
    print()
    print(
        f"serve_whatif ok: {submitted} submissions -> "
        f"{jobs['completed']} completed, {jobs['coalesced']} coalesced, "
        f"{jobs['rejected_total']} rejected, {jobs['failed']} failed "
        f"(after {jobs['retries']} retry), cache hits "
        f"{snapshot['cache']['hits']}"
    )


if __name__ == "__main__":
    asyncio.run(main())
