#!/usr/bin/env python3
"""CUDA streams: building the paper's 'ideal' explicit pipeline by hand.

The explicit Quantum Volume version wins in-memory comparisons because
Aer overlaps H2D copies, compute, and D2H copies on separate streams.
This example processes a batch of chunks three ways — serial, double-
buffered, triple-buffered — and shows the pipeline converging to
max(copy, compute) per chunk.

Run:  python examples/async_pipeline.py
"""

import numpy as np

from repro import GraceHopperSystem, SystemConfig
from repro.core import ArrayAccess, StreamManager
from repro.sim.config import MiB

CHUNK = 256 * MiB
N_CHUNKS = 12


def run(n_streams: int):
    gh = GraceHopperSystem(SystemConfig.paper_gh200(page_size=65536))
    gh.launch_kernel("warmup", [])
    mgr = StreamManager(gh)
    streams = [mgr.create_stream(f"s{i}") for i in range(n_streams)]
    hosts = [gh.cuda_malloc_host(np.uint8, (CHUNK,)) for _ in range(n_streams)]
    devs = [gh.cuda_malloc(np.uint8, (CHUNK,)) for _ in range(n_streams)]

    t0 = gh.now
    for c in range(N_CHUNKS):
        i = c % n_streams
        s = streams[i]
        s.memcpy_h2d_async(devs[i], hosts[i])
        s.launch(
            f"process-{c}",
            [ArrayAccess.read(devs[i]), ArrayAccess.write_(devs[i])],
            flops=2.0 * CHUNK,
        )
        s.memcpy_d2h_async(hosts[i], devs[i])
    mgr.device_synchronize()
    return gh.now - t0, mgr


def main():
    cfg = SystemConfig.paper_gh200()
    h2d = CHUNK / cfg.c2c_h2d_bandwidth
    d2h = CHUNK / cfg.c2c_d2h_bandwidth
    kern = 2 * CHUNK / cfg.hbm_bandwidth
    print(
        f"per chunk: h2d {h2d * 1e3:.2f} ms, kernel {kern * 1e3:.2f} ms, "
        f"d2h {d2h * 1e3:.2f} ms"
    )
    print(f"serial bound : {N_CHUNKS * (h2d + kern + d2h) * 1e3:8.1f} ms")
    print(f"pipeline bound: {N_CHUNKS * max(h2d, kern, d2h) * 1e3:8.1f} ms "
          f"(the slower copy engine)\n")

    print(f"{'streams':>8s} {'total ms':>9s} {'overlap efficiency':>19s}")
    print("-" * 40)
    for n in (1, 2, 3):
        total, mgr = run(n)
        print(f"{n:>8d} {total * 1e3:>9.1f} {mgr.overlap_efficiency():>19.2f}")

    print(
        "\nWith two streams the copies hide behind each other and the\n"
        "kernel; the D2H engine (297 GB/s) becomes the bottleneck --\n"
        "exactly why the paper calls the explicit chunked pipeline the\n"
        "ideal performance reference (Section 4)."
    )


if __name__ == "__main__":
    main()
