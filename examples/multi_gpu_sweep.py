#!/usr/bin/env python3
"""Sweep superchip count x NUMA policy for the sharded workloads.

Runs the ``topo_scaling`` experiment once per node-level NUMA policy
through ``run_experiments_parallel`` — each invocation sweeps 1/2/4
superchips for both sharded applications, and the on-disk result cache
makes repeated sweeps (re-plotting, diffing policies) free. Ends with a
compact cross-policy summary of the 4-superchip speedups.

Run:  python examples/multi_gpu_sweep.py [--scale 0.1] [--jobs 4]
"""

import argparse
import time

from repro.bench import ResultCache, render_table, run_experiments_parallel

POLICIES = ("default", "ddr", "hbm", "interleave")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=0.1,
                        help="problem/machine scale (1.0 = paper testbed)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes per invocation")
    parser.add_argument("--superchips", type=int, nargs="+", default=[1, 2, 4],
                        help="superchip counts to sweep")
    parser.add_argument("--policies", nargs="+", default=list(POLICIES),
                        choices=POLICIES, help="NUMA policies to sweep")
    parser.add_argument("--cache-dir", default=None,
                        help="cache location (default: ~/.cache/repro-bench)")
    args = parser.parse_args()

    cache = ResultCache(args.cache_dir)
    results = {}
    t0 = time.perf_counter()
    for policy in args.policies:
        out = run_experiments_parallel(
            ["topo_scaling"],
            jobs=args.jobs,
            cache=cache,
            kwargs={
                "scale": args.scale,
                "superchips": tuple(args.superchips),
                "numa_policy": policy,
            },
        )
        results[policy] = out["topo_scaling"]
    dt = time.perf_counter() - t0

    for policy, result in results.items():
        print(f"--- numa_policy={policy} ---")
        print(render_table(result))
        print()

    top = max(args.superchips)
    print(f"{top}-superchip speedup by policy:")
    for policy, result in results.items():
        for row in result.rows:
            if row["superchips"] == top:
                print(f"  {policy:<11} {row['app']:<16} {row['speedup']:.2f}x")
    print(
        f"\n{len(results)} policy sweep(s) in {dt:.1f}s "
        f"({cache.hits} cached, {cache.misses} regenerated)."
    )


if __name__ == "__main__":
    main()
