"""Figure 11: system-over-managed speedup vs oversubscription."""


def test_fig11_oversubscription(regenerate):
    result = regenerate("fig11", ratios=(1.0, 1.5, 2.0))
    rows = {r["app"]: r for r in result.rows}
    # The speedup of system memory over managed memory grows with the
    # oversubscription ratio for the streaming Rodinia applications.
    for app in ("bfs", "hotspot", "needle", "pathfinder"):
        series = [rows[app]["R1.0"], rows[app]["R1.5"], rows[app]["R2.0"]]
        assert series[-1] > series[0], (app, series)
        assert series[-1] > 1.0, (app, series)
    # SRAD is the most oversubscription-impacted application: its system
    # version needs GPU residency that oversubscription denies.
    srad = [rows["srad"]["R1.0"], rows["srad"]["R1.5"], rows["srad"]["R2.0"]]
    assert srad[-1] > srad[0]
