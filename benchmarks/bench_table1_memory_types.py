"""Table 1: memory management types on Grace Hopper."""

from repro.core.allocators import allocator_table
from repro.mem.pagetable import AllocKind


def test_table1_memory_types(regenerate):
    result = regenerate("table1")
    assert len(result.rows) == 4
    # The unified types are the cache-coherent ones.
    coherent = [r for r in result.rows if r["cache_coherent"] == "Yes"]
    assert {r["interface"] for r in coherent} == {
        "malloc()",
        "cudaMallocManaged()",
    }
    # Registry agrees with the rendered table.
    infos = allocator_table()
    assert {i.kind for i in infos} == set(AllocKind) - {AllocKind.NUMA_CPU}
