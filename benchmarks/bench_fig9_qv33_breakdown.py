"""Figure 9: 33-qubit QV init/compute breakdown per page size."""

from conftest import one


def test_fig9_qv33_breakdown(regenerate):
    result = regenerate("fig9")
    s4 = one(result.rows, version="system", page_kb=4)
    s64 = one(result.rows, version="system", page_kb=64)
    m4 = one(result.rows, version="managed", page_kb=4)
    m64 = one(result.rows, version="managed", page_kb=64)

    # System memory: initialisation dominates at 4 KB and shrinks several
    # fold at 64 KB (paper: ~5x init, 2.9x total).
    assert s4["init_s"] > 5 * s4["compute_s"]
    assert 3.0 <= s4["init_s"] / s64["init_s"] <= 6.5
    assert 2.0 <= s4["total_s"] / s64["total_s"] <= 5.0
    # Compute time is stable across page sizes.
    assert abs(s4["compute_s"] - s64["compute_s"]) / s4["compute_s"] < 0.05
    # Managed memory is nearly page-size insensitive (paper: ~10%).
    assert abs(m4["total_s"] - m64["total_s"]) / m64["total_s"] < 0.15
    # Managed initialisation is orders of magnitude below system 4 KB.
    assert m4["init_s"] < s4["init_s"] / 50
