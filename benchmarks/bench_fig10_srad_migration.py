"""Figure 10: SRAD per-iteration time and memory traffic."""

from conftest import by


def test_fig10_srad_migration(regenerate):
    result = regenerate("fig10")
    system = sorted(by(result.rows, "version", "system"),
                    key=lambda r: r["iteration"])
    managed = sorted(by(result.rows, "version", "managed"),
                     key=lambda r: r["iteration"])
    assert len(system) == len(managed) == 12

    # Managed: expensive first iteration (on-demand migration), then flat.
    assert managed[0]["time_ms"] > 2 * managed[1]["time_ms"]
    steady_m = [r["time_ms"] for r in managed[1:]]
    assert max(steady_m) - min(steady_m) < 0.2 * max(steady_m)

    # System: three sub-phases. (1) first-touch spike;
    assert system[0]["time_ms"] > 3 * system[1]["time_ms"]
    # (2) decreasing migration ramp, still slower than managed;
    ramp = system[1:4]
    assert all(a["time_ms"] >= b["time_ms"] for a, b in zip(ramp, ramp[1:]))
    assert all(r["time_ms"] > managed[5]["time_ms"] for r in ramp[:2])
    # (3) stable iterations that outperform the managed version.
    tail = system[5:]
    assert all(r["time_ms"] < managed[5]["time_ms"] for r in tail)

    # Traffic: C2C reads fall to ~zero while GPU reads rise to steady.
    assert system[0]["c2c_read_gb"] > 1.0
    assert all(r["c2c_read_gb"] < 0.05 for r in system[5:])
    assert system[-1]["gpu_read_gb"] > system[0]["gpu_read_gb"]
    # Managed reads come from GPU memory even in iteration 1.
    assert managed[0]["c2c_read_gb"] < 0.05
