"""Section 2.1: STREAM and Comm|Scope bandwidth anchors."""

from conftest import one


def test_sec21_bandwidths(regenerate):
    result = regenerate("sec21")
    gpu = one(result.rows, benchmark="STREAM GPU (HBM3)")
    cpu = one(result.rows, benchmark="STREAM CPU (LPDDR5X)")
    h2d = one(result.rows, benchmark="Comm|Scope H2D")
    d2h = one(result.rows, benchmark="Comm|Scope D2H")
    # Within 10% of the paper's measured numbers; below theoretical peaks.
    for row, paper in ((gpu, 3400), (cpu, 486), (h2d, 375), (d2h, 297)):
        assert abs(row["measured_gb_s"] - paper) / paper < 0.10
        assert row["measured_gb_s"] < row["theoretical_gb_s"]
    # The asymmetry of the C2C link is preserved.
    assert h2d["measured_gb_s"] > d2h["measured_gb_s"]
