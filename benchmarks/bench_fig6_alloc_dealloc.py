"""Figure 6: alloc+dealloc time at 4 KB vs 64 KB system pages."""

import statistics


def test_fig6_alloc_dealloc(regenerate):
    result = regenerate("fig6")
    ratios = [r["ratio_4k_over_64k"] for r in result.rows]
    # 64 KB pages reduce alloc+dealloc for every application...
    assert all(r > 4 for r in ratios)
    # ...within the paper's band (4.6x-38x), average in the tens.
    assert max(ratios) <= 40
    assert 10 <= statistics.mean(ratios) <= 32
    # Deallocation dominates: the 4 KB times are page-count bound.
    for row in result.rows:
        assert row["alloc_dealloc_4k_s"] > row["alloc_dealloc_64k_s"]
