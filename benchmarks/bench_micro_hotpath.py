"""Microbenchmarks for the simulator's hot paths.

Covers the layers the interval-list PageSet overhaul and the batched
epoch executor target:

* symbolic set algebra at paper scale (two million 64 KB pages = the
  128 GB statevector of the 34-qubit Quantum Volume run) — including a
  head-to-head against the seed implementation of the range-split
  ``difference``, which materialised the full index array;
* the :meth:`MemorySubsystem.access` batch dispatch, and the fused
  :meth:`MemorySubsystem.access_batch` epoch path against the
  per-descriptor loop it replaces;
* :meth:`AccessCounterMigrator.service` under steady oversubscription,
  plus its below-threshold early-skip;
* :class:`~repro.sim.checkpoint.SystemCheckpoint` capture/restore, the
  primitive behind incremental what-if re-simulation.

Besides the pytest-benchmark tables, the measured timings are exported
to ``BENCH_hotpath.json`` at the repo root so speedups are tracked in
version control.
"""

from __future__ import annotations

import json
import timeit
from pathlib import Path

import numpy as np
import pytest

from repro.core.kernels import ArrayAccess
from repro.core.runtime import GraceHopperSystem
from repro.mem.coherence import AccessShape
from repro.mem.pageset import PageSet
from repro.sim.config import Location, Processor, SystemConfig

#: Two million pages — the paper's 128 GB statevector at 64 KB pages.
N_PAGES = 2 * 1024 * 1024

RESULTS: dict = {"n_pages": N_PAGES, "benchmarks": {}}

#: Full-scale end-to-end wall times, measured offline with paired
#: back-to-back ``repro.bench <exp>`` runs on the same idle container —
#: too slow for a per-commit benchmark, recorded here so the speedup the
#: batched executor PR claims stays version-controlled next to the
#: microbenchmarks that explain it. ``seed_seconds`` is the same command
#: at the seed commit, before the batched eviction/epoch executor and
#: the residency-run cache landed.
RESULTS["full_scale"] = {
    "fig12": {
        "seed_seconds": 51.3,
        "seconds": 3.7,
        "speedup_vs_seed": 13.9,
    },
    "fig13": {
        "seed_seconds": 65.1,
        "seconds": 4.9,
        "speedup_vs_seed": 13.3,
    },
}


def _best(fn, repeat=5, number=10) -> float:
    """Best-of-N wall time per call, seconds."""
    return min(timeit.repeat(fn, number=number, repeat=repeat)) / number


def _record(name: str, seconds: float, **extra) -> None:
    RESULTS["benchmarks"][name] = {"seconds": seconds, **extra}


@pytest.fixture(scope="module", autouse=True)
def export_results():
    yield
    path = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"
    path.write_text(json.dumps(RESULTS, indent=2) + "\n")


def _seed_difference(a: PageSet, b: PageSet) -> PageSet:
    """The seed implementation of the range-split difference: materialise
    the full index array, mask, re-detect ranges. Kept inline as the
    baseline the symbolic path is measured against."""
    mine = np.arange(a.start, a.stop, dtype=np.int64)
    mask = (mine < b.start) | (mine >= b.stop)
    return PageSet.of(mine[mask])


class TestPageSetAlgebra:
    def test_difference_range_split_speedup_vs_seed(self, benchmark):
        big = PageSet.range(0, N_PAGES)
        hole = PageSet.range(1000, N_PAGES - 1000)
        out = big.difference(hole)
        assert out.index is None and out.run_count == 2
        new_t = _best(lambda: big.difference(hole), number=100)
        seed_t = _best(lambda: _seed_difference(big, hole), number=2)
        speedup = seed_t / new_t
        _record(
            "difference_range_split",
            new_t,
            seed_seconds=seed_t,
            speedup_vs_seed=round(speedup, 1),
        )
        benchmark.pedantic(
            lambda: big.difference(hole), rounds=5, iterations=100
        )
        assert speedup >= 5.0, f"only {speedup:.1f}x over the seed"

    def test_union_disjoint_ranges(self, benchmark):
        a = PageSet.range(0, N_PAGES // 2 - 1000)
        b = PageSet.range(N_PAGES // 2 + 1000, N_PAGES)
        out = benchmark(lambda: a.union(b))
        assert out.index is None and out.run_count == 2
        _record("union_disjoint", _best(lambda: a.union(b), number=100))

    def test_intersect_runs_with_range(self, benchmark):
        runs = PageSet.from_runs(
            [(k * 65536, k * 65536 + 4096) for k in range(32)]
        )
        window = PageSet.range(N_PAGES // 4, 3 * N_PAGES // 4)
        out = benchmark(lambda: runs.intersect(window))
        assert out.index is None
        _record(
            "intersect_runs_range",
            _best(lambda: runs.intersect(window), number=100),
        )

    def test_align_down_runs(self, benchmark):
        ps = PageSet.from_runs(
            [(k * 65536 + 3, k * 65536 + 40) for k in range(32)]
        )
        out = benchmark(lambda: ps.align_down(16))
        assert out.index is None
        _record("align_down_runs", _best(lambda: ps.align_down(16), number=100))

    def test_strided_construction(self, benchmark):
        out = benchmark(lambda: PageSet.strided(0, N_PAGES, 16))
        assert out.index is None
        _record(
            "strided_construction",
            _best(lambda: PageSet.strided(0, N_PAGES, 16), number=100),
        )

    def test_from_mask_chunky_residency(self, benchmark):
        state = np.zeros(N_PAGES, dtype=np.int8)
        state[: N_PAGES // 2] = 1
        state[-4096:] = 1
        out = benchmark(lambda: PageSet.from_mask(state == 1))
        assert out.index is None and out.run_count == 2
        _record(
            "from_mask_chunky",
            _best(lambda: PageSet.from_mask(state == 1), number=10),
        )


class TestSubsystemDispatch:
    @pytest.fixture(scope="class")
    def gh(self):
        return GraceHopperSystem(SystemConfig.scaled(1 / 64, page_size=65536))

    def test_access_batch_dispatch(self, gh, benchmark):
        x = gh.malloc(np.float32, (1 << 24,), name="hot_x")
        gh.cpu_phase("init", [ArrayAccess.write_(x)])
        alloc = x.alloc
        pages = PageSet.full(alloc.n_pages)
        shape = AccessShape(
            useful_bytes=alloc.nbytes, element_bytes=4, density=1.0
        )

        def dispatch():
            return gh.mem.access(
                Processor.GPU, alloc, pages, shape, now=gh.now
            )

        result = benchmark(dispatch)
        assert result is not None
        _record("subsystem_access", _best(dispatch, number=10))


class TestBatchedExecutor:
    """The fused epoch path vs the per-descriptor loop it replaces."""

    N_DESCRIPTORS = 16

    @pytest.fixture(scope="class")
    def steady_state(self):
        from repro.mem.batch import AccessBatch

        gh = GraceHopperSystem(SystemConfig.scaled(1 / 64, page_size=65536))
        arrays = [
            gh.malloc(np.float32, (1 << 20,), name=f"batch_{i}")
            for i in range(self.N_DESCRIPTORS)
        ]
        gh.cpu_phase("init", [ArrayAccess.write_(a) for a in arrays])
        batch = AccessBatch.from_accesses(
            [ArrayAccess.write_(a) for a in arrays]
        )
        return gh, batch

    def test_access_batch_vs_descriptor_loop(self, steady_state, benchmark):
        gh, batch = steady_state

        def fused():
            return gh.mem.access_batch(Processor.CPU, batch, now=gh.now)

        def loop():
            for i, alloc in enumerate(batch.allocs):
                gh.mem.access(
                    Processor.CPU, alloc, batch.pages[i], batch.shape(i),
                    write=bool(batch.write[i]), now=gh.now,
                )

        result = benchmark(fused)
        assert result.lpddr_bytes > 0
        fused_t = _best(fused, number=20)
        loop_t = _best(loop, number=20)
        _record(
            "access_batch_fused",
            fused_t,
            loop_seconds=loop_t,
            descriptors=self.N_DESCRIPTORS,
            speedup_vs_loop=round(loop_t / fused_t, 1),
        )
        assert fused_t < loop_t, "fused batch slower than the loop"


class TestCheckpoint:
    """Capture/restore — the incremental what-if primitive."""

    @pytest.fixture(scope="class")
    def warm_system(self):
        gh = GraceHopperSystem(SystemConfig.scaled(1 / 64, page_size=65536))
        arrays = [
            gh.malloc(np.float32, (1 << 22,), name=f"ckpt_{i}")
            for i in range(4)
        ]
        gh.cpu_phase("init", [ArrayAccess.write_(a) for a in arrays])
        gh.launch_kernel(
            "warm", [ArrayAccess.read(a) for a in arrays], flops=1e9
        )
        return gh

    def test_capture_restore(self, warm_system, benchmark):
        from repro.sim.checkpoint import SystemCheckpoint

        gh = warm_system
        ckpt = benchmark(lambda: SystemCheckpoint.capture(gh))
        capture_t = _best(lambda: SystemCheckpoint.capture(gh), number=10)
        restore_t = _best(lambda: ckpt.restore(gh), number=10)
        _record(
            "checkpoint_capture",
            capture_t,
            state_bytes=ckpt.nbytes,
        )
        _record("checkpoint_restore", restore_t, state_bytes=ckpt.nbytes)
        assert (
            SystemCheckpoint.capture(gh).fingerprint() == ckpt.fingerprint()
        )


class TestMigratorService:
    @pytest.fixture(scope="class")
    def oversubscribed(self):
        # GPU memory smaller than the working set: the migrator always has
        # CPU-resident hot pages to consider, so service() does steady
        # per-epoch work instead of a one-shot migration.
        gh = GraceHopperSystem(
            SystemConfig.scaled(1 / 64, page_size=65536, migration_enable=True)
        )
        hbm_elems = int(gh.config.gpu_memory_bytes * 1.5) // 4
        x = gh.malloc(np.float32, (hbm_elems,), name="big")
        gh.cpu_phase("init", [ArrayAccess.write_(x)])
        return gh, x

    def test_service_steady_state(self, oversubscribed, benchmark):
        gh, x = oversubscribed
        alloc = x.alloc

        def one_epoch():
            cpu_pages = alloc.subset(PageSet.full(alloc.n_pages), Location.CPU)
            gh.mem.migrator.record_gpu_accesses(
                alloc, cpu_pages, gh.config.migration_threshold
            )
            return gh.mem.begin_epoch()

        report = benchmark(one_epoch)
        assert report is not None
        _record("migrator_service", _best(one_epoch, number=2))

    def test_service_early_skip(self, oversubscribed, benchmark):
        """Below-threshold epochs skip the residency-subset scan."""
        gh, x = oversubscribed
        alloc = x.alloc
        alloc.counters.reset(PageSet.full(alloc.n_pages))
        alloc.counters.base = gh.config.migration_threshold - 1
        alloc.counters.extra = None

        def idle_epoch():
            return gh.mem.begin_epoch()

        report = benchmark(idle_epoch)
        assert report.pages_migrated == 0
        _record("migrator_service_skip", _best(idle_epoch, number=20))
