"""Multi-superchip topology scaling (beyond the paper).

Regenerates the ``topo_scaling`` sweep and asserts its qualitative
shape: near-linear strong scaling for the halo-exchange stencil,
fabric-bound flattening for the distributed statevector, and fabric
traffic confined to the links each workload should use.
"""

from conftest import by


def test_topo_scaling(regenerate):
    result = regenerate("topo_scaling", scale=0.1)
    hot = {r["superchips"]: r for r in by(result.rows, "app", "hotspot-sharded")}
    qv = {r["superchips"]: r for r in by(result.rows, "app", "qv-sharded")}

    # Compute-bound stencil: near-linear speedup.
    assert hot[2]["speedup"] > 1.6
    assert hot[4]["speedup"] > 3.0
    # Exchange-heavy statevector: fabric-bound, scaling flattens far
    # below linear and the exchange dominates the layer time.
    assert qv[4]["speedup"] < 2.0
    assert qv[2]["exchange_s"] > qv[2]["compute_s"]
    # Per-link traffic: the butterfly rides the GPU-GPU NVLink fabric,
    # never the CPU socket link; one superchip has no fabric traffic.
    assert qv[2]["nvlink_gb"] > 0.0
    assert qv[2]["socket_gb"] == 0.0
    assert hot[1]["exchange_gb"] == 0.0 and qv[1]["exchange_gb"] == 0.0
    # Exchange volume is O(state), independent of the shard count.
    assert qv[2]["exchange_gb"] == qv[4]["exchange_gb"]
