"""Table 2: applications, access patterns, inputs."""


def test_table2_applications(regenerate):
    result = regenerate("table2")
    names = {r["name"] for r in result.rows}
    assert names == {"bfs", "hotspot", "needle", "pathfinder", "qiskit", "srad"}
    patterns = {r["name"]: r["pattern"] for r in result.rows}
    assert patterns["hotspot"] == "regular"
    assert patterns["pathfinder"] == "regular"
    assert patterns["needle"] == "irregular"
    assert patterns["srad"] == "irregular"
    assert patterns["bfs"] == "mixed"
    assert patterns["qiskit"] == "mixed"
