"""Figure 12: 34-qubit QV memory-tier throughput (managed memory)."""

from conftest import one


def test_fig12_qv34_throughput(regenerate):
    result = regenerate("fig12")
    m4 = one(result.rows, variant="managed-4K")
    m64 = one(result.rows, variant="managed-64K")
    pf = one(result.rows, variant="managed-64K+prefetch")

    # Without prefetch the computation is throttled by slow C2C traffic:
    # L1<->L2 throughput is far below the HBM-fed rate.
    assert m4["l1l2_gb_s"] < 700
    assert m4["c2c_gb_s"] > 50
    # 64 KB pages improve the remote path but stay throttled.
    assert m4["l1l2_gb_s"] < m64["l1l2_gb_s"] < 1000
    # Prefetch feeds the GPU from its own memory: C2C traffic vanishes
    # during compute and L1<->L2 throughput recovers to HBM levels.
    assert pf["c2c_gb_s"] < 10
    assert pf["l1l2_gb_s"] > 3 * m64["l1l2_gb_s"]
    assert pf["compute_s"] < m64["compute_s"] < m4["compute_s"]
