"""Figure 8: QV speedup of 64 KB over 4 KB system pages."""


def test_fig8_qiskit_pagesize(regenerate):
    result = regenerate("fig8")
    rows = sorted(result.rows, key=lambda r: r["qubits"])
    sys_speedups = [r["system_speedup_64k"] for r in rows]
    mng_speedups = [r["managed_speedup_64k"] for r in rows]
    # System-memory speedup grows with the problem size toward ~4x.
    assert sys_speedups[-1] > sys_speedups[0] - 0.3
    assert 3.0 <= max(sys_speedups) <= 4.5
    # Managed speedup decreases with problem size toward ~1x.
    assert mng_speedups[0] > mng_speedups[-1]
    assert mng_speedups[-1] < 1.2
    # From 25 qubits the managed version is nearly page-size insensitive
    # while the system version still gains almost 4x.
    for r in rows:
        if r["qubits"] >= 28:
            assert r["managed_speedup_64k"] < 1.3
            assert r["system_speedup_64k"] > 3.0
