"""Shared helpers for the table/figure benchmarks.

Each ``bench_*`` file regenerates one table or figure of the paper via
the experiment registry, asserts its qualitative shape (who wins, by
roughly what factor, where crossovers fall), and prints the same
rows/series the paper reports. Experiments are deterministic
simulations, so each is timed with a single pedantic round.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import (
    ResultCache,
    render_table,
    run_experiment,
    run_experiment_cached,
)


@pytest.fixture(scope="session")
def result_cache():
    """Opt-in on-disk result cache for the figure/table benchmarks.

    Set ``REPRO_BENCH_CACHE=1`` (default location) or to a directory to
    serve repeated runs from cache; unset, every run regenerates.
    """
    flag = os.environ.get("REPRO_BENCH_CACHE")
    if not flag:
        return None
    return ResultCache(None if flag == "1" else flag)


@pytest.fixture
def regenerate(benchmark, result_cache):
    """Run one experiment under pytest-benchmark and print its table."""

    def _run(exp_id: str, **kwargs):
        if result_cache is not None:
            target = lambda: run_experiment_cached(  # noqa: E731
                exp_id, cache=result_cache, **kwargs
            )
        else:
            target = lambda: run_experiment(exp_id, **kwargs)  # noqa: E731
        result = benchmark.pedantic(target, rounds=1, iterations=1)
        print()
        print(render_table(result))
        return result

    return _run


def by(rows, key, value):
    """Rows whose ``key`` equals ``value``."""
    return [r for r in rows if r[key] == value]


def one(rows, **filters):
    """The single row matching all ``filters``."""
    out = [r for r in rows if all(r[k] == v for k, v in filters.items())]
    assert len(out) == 1, f"expected one row for {filters}, got {len(out)}"
    return out[0]
