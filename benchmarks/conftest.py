"""Shared helpers for the table/figure benchmarks.

Each ``bench_*`` file regenerates one table or figure of the paper via
the experiment registry, asserts its qualitative shape (who wins, by
roughly what factor, where crossovers fall), and prints the same
rows/series the paper reports. Experiments are deterministic
simulations, so each is timed with a single pedantic round.
"""

from __future__ import annotations

import pytest

from repro.bench import render_table, run_experiment


@pytest.fixture
def regenerate(benchmark):
    """Run one experiment under pytest-benchmark and print its table."""

    def _run(exp_id: str, **kwargs):
        result = benchmark.pedantic(
            lambda: run_experiment(exp_id, **kwargs), rounds=1, iterations=1
        )
        print()
        print(render_table(result))
        return result

    return _run


def by(rows, key, value):
    """Rows whose ``key`` equals ``value``."""
    return [r for r in rows if r[key] == value]


def one(rows, **filters):
    """The single row matching all ``filters``."""
    out = [r for r in rows if all(r[k] == v for k, v in filters.items())]
    assert len(out) == 1, f"expected one row for {filters}, got {len(out)}"
    return out[0]
