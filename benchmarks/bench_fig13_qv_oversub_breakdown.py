"""Figure 13: QV phase breakdown under oversubscription (managed)."""

from conftest import one


def test_fig13_qv_oversub_breakdown(regenerate):
    result = regenerate("fig13")
    s4 = one(result.rows, case="30q-simulated", page_kb=4)
    s64 = one(result.rows, case="30q-simulated", page_kb=64)
    n4 = one(result.rows, case="34q-natural", page_kb=4)
    n64 = one(result.rows, case="34q-natural", page_kb=64)
    pf = one(result.rows, case="34q-natural+prefetch", page_kb=64)

    # 34 qubits: 64 KB pages shorten initialisation and accelerate the
    # run (paper: migration accelerated by 58%).
    assert n64["init_s"] <= n4["init_s"]
    assert n64["compute_s"] < n4["compute_s"]
    # 30 qubits flips the preference: ~3x slower compute at 64 KB
    # (evict + migrate-back amplification at the system page size).
    ratio = s64["compute_s"] / s4["compute_s"]
    assert 2.0 <= ratio <= 4.0, ratio
    # Prefetching rescues the 34-qubit managed run.
    assert pf["compute_s"] < 0.5 * n64["compute_s"]
