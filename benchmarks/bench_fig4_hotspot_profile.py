"""Figure 4: hotspot memory-usage-over-time profiles."""

from conftest import by


def test_fig4_hotspot_profile(regenerate):
    result = regenerate("fig4")
    system = by(result.rows, "version", "system")
    managed = by(result.rows, "version", "managed")
    assert len(system) > 5 and len(managed) > 5

    # System version: GPU usage flat during compute (no migration); its
    # peak equals the managed version's *pre-migration* level.
    sys_gpu_peak = max(r["gpu_used_gb"] for r in system)
    mng_gpu_peak = max(r["gpu_used_gb"] for r in managed)
    assert mng_gpu_peak > sys_gpu_peak + 1.0  # migration raised GPU usage

    # Managed version: RSS collapses once compute migrates pages away.
    mng_rss_peak = max(r["rss_gb"] for r in managed)
    peak_t = next(r["t_s"] for r in managed if r["rss_gb"] == mng_rss_peak)
    after = [r for r in managed if r["t_s"] > peak_t]
    assert any(
        r["rss_gb"] < 0.2 and r["gpu_used_gb"] > sys_gpu_peak for r in after
    )

    # Both versions ramp RSS gradually during CPU initialisation.
    ramp = [r["rss_gb"] for r in system]
    assert sum(1 for a, b in zip(ramp, ramp[1:]) if b > a) >= 4
