#!/usr/bin/env python
"""Regenerate the golden result fingerprints under ``tests/golden/``.

Run this after an *intentional* change to the simulation model, review
the resulting diff (each golden file carries the full canonical result
payload, so ``git diff tests/golden`` shows exactly which rows moved),
and commit the updated fingerprints together with the model change.

Usage::

    PYTHONPATH=src python benchmarks/update_golden.py            # all
    PYTHONPATH=src python benchmarks/update_golden.py fig3 fig10 # some

Equivalent to ``repro-bench verify --update-golden``; this wrapper only
exists so the regeneration step is discoverable next to the benchmark
suite.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.check.golden import main_verify  # noqa: E402


if __name__ == "__main__":
    sys.exit(main_verify(["--update-golden", *sys.argv[1:]]))
