"""Section 5.1.2: cudaHostRegister / pre-init-loop pre-population."""

from conftest import one


def test_sec512_hostregister(regenerate):
    result = regenerate("sec512")
    base = one(result.rows, variant="baseline")
    reg = one(result.rows, variant="cudaHostRegister")
    loop = one(result.rows, variant="pre-init-loop")

    # Registration costs real time (paper: ~300 ms for srad's 1.6 GB
    # image; we register the full 8 GB of GPU-first-touched buffers, so
    # proportionally more) but removes the replayable-fault storm.
    assert reg["registration_s"] > 0.2
    assert reg["compute_s"] < 0.7 * base["compute_s"]
    # The artificial pre-init loop matches cudaHostRegister.
    assert abs(loop["compute_s"] - reg["compute_s"]) < 0.05 * reg["compute_s"]
    assert loop["registration_s"] <= reg["registration_s"]
