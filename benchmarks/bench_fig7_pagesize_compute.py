"""Figure 7: compute time at 4 KB vs 64 KB (auto-migration enabled)."""

from conftest import one


def test_fig7_pagesize_compute(regenerate):
    result = regenerate("fig7")
    rows = {r["app"]: r for r in result.rows}
    # 4 KB compute is faster (or equal) for every Rodinia app but SRAD.
    for app in ("bfs", "hotspot", "needle", "pathfinder"):
        assert rows[app]["slowdown_64k"] >= 1.0, app
    assert max(
        rows[a]["slowdown_64k"] for a in ("bfs", "hotspot", "needle", "pathfinder")
    ) > 1.3
    # SRAD's iterative reuse makes 64 KB pages a clear win.
    assert rows["srad"]["slowdown_64k"] < 0.6
