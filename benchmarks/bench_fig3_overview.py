"""Figure 3: unified-memory speedup over explicit copy, six apps."""

from conftest import one


def test_fig3_overview(regenerate):
    result = regenerate("fig3")
    rows = {r["app"]: r for r in result.rows}
    # Class 1: system outperforms managed.
    for app in ("needle", "pathfinder", "hotspot", "bfs", "qiskit-17q",
                "qiskit-19q"):
        assert rows[app]["system_speedup"] > rows[app]["managed_speedup"], app
    # Class 2: managed outperforms system (srad, larger QV).
    for app in ("srad", "qiskit-23q"):
        assert rows[app]["managed_speedup"] > rows[app]["system_speedup"], app
    # needle and pathfinder system versions beat even the explicit copy.
    assert rows["needle"]["system_speedup"] > 1.0
    assert rows["pathfinder"]["system_speedup"] > 1.0
    # Explicit is the fastest QV version (ideal pipeline).
    for q in (17, 19, 21, 23):
        row = rows[f"qiskit-{q}q"]
        assert row["system_speedup"] <= 1.1 and row["managed_speedup"] <= 1.0
