"""Ablations on the memory-system design choices (beyond the paper)."""

from conftest import by, one


def test_abl_threshold(regenerate):
    result = regenerate("abl_threshold")
    srad = {r["threshold"]: r for r in by(result.rows, "app", "srad")}
    path = {r["threshold"]: r for r in by(result.rows, "app", "pathfinder")}
    # A practically-infinite threshold disables migration.
    assert srad[1 << 20]["pages_migrated"] == 0
    assert path[1 << 20]["pages_migrated"] == 0
    # SRAD (iterative) is fastest with migration enabled; pathfinder
    # (single pass) is fastest with migration effectively off.
    assert srad[256]["compute_s"] < srad[1 << 20]["compute_s"]
    assert path[1 << 20]["compute_s"] <= path[256]["compute_s"]


def test_abl_first_touch(regenerate):
    result = regenerate("abl_first_touch")
    acc = one(result.rows, policy="accessor")
    cpu = one(result.rows, policy="cpu-always")
    # Accessor placement keeps the GPU-initialised statevector local.
    assert acc["c2c_read_gb"] < 1.0
    assert cpu["c2c_read_gb"] > 10.0
    assert cpu["compute_s"] > 3 * acc["compute_s"]


def test_abl_autonuma(regenerate):
    result = regenerate("abl_autonuma")
    on = one(result.rows, autonuma="on")
    off = one(result.rows, autonuma="off")
    assert on["cpu_init_s"] > off["cpu_init_s"]


def test_abl_remote_efficiency(regenerate):
    result = regenerate("abl_remote_efficiency")
    rows = sorted(result.rows, key=lambda r: r["efficiency"])
    path = [r["pathfinder_sys_over_mng"] for r in rows]
    srad = [r["srad_sys_over_mng"] for r in rows]
    # Streaming apps gain from better remote access; the split direction
    # holds at every efficiency.
    assert path[-1] >= path[0]
    assert all(s < 1.0 for s in srad)
    assert all(p > 1.0 for p in path)


def test_abl_diverse_workloads(regenerate):
    result = regenerate("abl_diverse_workloads")
    rows = {r["workload"]: r for r in result.rows}
    # Random sparse access: no benefit (stalls may even hurt).
    assert rows["random-sparse"]["migration_benefit"] <= 1.0
    # Single-pass streaming: nothing migrates at all.
    assert rows["stream-1pass"]["migrated_gb"] == 0.0
    # Reuse flips the verdict: 12-pass streaming and iterative SRAD gain.
    assert rows["stream-12pass"]["migration_benefit"] > 1.0
    assert rows["iterative"]["migration_benefit"] > 1.0
    # The skewed workload gains most per migrated byte: only the hot
    # region moves.
    assert rows["skewed-90/10"]["migration_benefit"] > 1.3
    assert rows["skewed-90/10"]["migrated_gb"] < rows["iterative"]["migrated_gb"]


def test_abl_migration_off(regenerate):
    result = regenerate("abl_migration_off")
    on = one(result.rows, migration="on")
    off = one(result.rows, migration="off")
    assert on["pages_migrated"] > 0
    assert off["pages_migrated"] == 0
    assert on["steady_iter_ms"] < off["steady_iter_ms"]
    assert on["compute_s"] < off["compute_s"]
