"""Figure 5: Quantum Volume memory-usage-over-time profiles."""

from conftest import by


def test_fig5_qiskit_profile(regenerate):
    result = regenerate("fig5")
    system = [r for r in by(result.rows, "version", "system")]
    managed = [r for r in by(result.rows, "version", "managed")]
    sys_total = by(result.rows, "version", "system-total")[0]["t_s"]
    mng_total = by(result.rows, "version", "managed-total")[0]["t_s"]

    # End-to-end execution is significantly prolonged with system memory
    # (GPU-side first-touch initialisation through the SMMU).
    assert sys_total > 2.5 * mng_total

    # The managed version reaches peak GPU usage in its first samples;
    # the system version ramps slowly.
    def time_to_peak(rows):
        peak = max(r["gpu_used_gb"] for r in rows)
        t_hit = next(r["t_s"] for r in rows if r["gpu_used_gb"] >= 0.95 * peak)
        span = rows[-1]["t_s"] - rows[0]["t_s"]
        return (t_hit - rows[0]["t_s"]) / span if span else 0.0

    assert time_to_peak(managed) < 0.35
    assert time_to_peak(system) > 0.5
